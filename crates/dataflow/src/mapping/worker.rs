//! Shared per-instance execution machinery used by every mapping.
//!
//! An [`InstanceRunner`] wraps one PE instance together with its routing
//! tables. Mappings feed it data and deliver the routed emissions over
//! their own transport.

use crate::error::DataflowError;
use crate::graph::{NodeId, WorkflowGraph};
use crate::pe::Pe;
use crate::planner::{ConcretePlan, InstanceId};
use crate::routing::{Grouping, Router};
use laminar_json::Value;
use laminar_script::VecSink;
use std::collections::BTreeMap;

/// One outgoing edge from the perspective of a sender instance.
pub struct OutEdge {
    /// Source port on this PE.
    pub from_port: String,
    /// Destination node.
    pub to_node: NodeId,
    /// Destination input port.
    pub to_port: String,
    /// Stateful router over the destination's instances.
    pub router: Router,
}

/// A datum addressed to a concrete destination instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedDatum {
    /// Destination instance.
    pub dest: InstanceId,
    /// Destination input port.
    pub port: String,
    /// Payload.
    pub value: Value,
}

/// Emissions of one `process` call, classified.
#[derive(Debug, Default)]
pub struct Emissions {
    /// Data to forward to downstream instances.
    pub routed: Vec<RoutedDatum>,
    /// Terminal-port emissions `(port, value)`.
    pub collected: Vec<(String, Value)>,
    /// Captured print lines.
    pub printed: Vec<String>,
}

/// Per-instance stats counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Data (or producer iterations) processed.
    pub processed: u64,
    /// Data emitted on any port.
    pub emitted: u64,
}

/// A PE instance plus its routing state.
pub struct InstanceRunner {
    /// Identity within the concrete plan.
    pub inst: InstanceId,
    /// PE name (for results/stats).
    pub node_name: String,
    pe: Box<dyn Pe>,
    outgoing: Vec<OutEdge>,
    terminal_ports: Vec<String>,
    /// Number of upstream EOS signals this instance must observe before it
    /// can finish.
    pub expected_eos: usize,
    /// Stats counters.
    pub stats: InstanceStats,
    iteration: i64,
    sink: VecSink,
}

impl InstanceRunner {
    /// Build the runner for instance `inst` under `plan`.
    pub fn new(
        graph: &WorkflowGraph,
        plan: &ConcretePlan,
        inst: InstanceId,
    ) -> Result<InstanceRunner, DataflowError> {
        let factory = graph.node(inst.node)?;
        let meta = factory.meta();
        let node_name = meta.name.clone();
        let mut outgoing = Vec::new();
        for c in graph.connections().iter().filter(|c| c.from == inst.node) {
            outgoing.push(OutEdge {
                from_port: c.from_port.clone(),
                to_node: c.to,
                to_port: c.to_port.clone(),
                router: Router::new(c.grouping, plan.count(c.to)),
            });
        }
        let connected: Vec<&str> = outgoing.iter().map(|e| e.from_port.as_str()).collect();
        let terminal_ports =
            meta.outputs.iter().filter(|p| !connected.contains(&p.as_str())).cloned().collect();
        let expected_eos =
            graph.connections().iter().filter(|c| c.to == inst.node).map(|c| plan.count(c.from)).sum();
        let mut pe = factory.instantiate();
        let mut sink = VecSink::default();
        pe.setup(inst.index, plan.count(inst.node), &mut sink)?;
        let mut runner = InstanceRunner {
            inst,
            node_name,
            pe,
            outgoing,
            terminal_ports,
            expected_eos,
            stats: InstanceStats::default(),
            iteration: 0,
            sink: VecSink::default(),
        };
        // Anything printed during setup is preserved.
        runner.sink.printed = sink.printed;
        Ok(runner)
    }

    /// Whether the instance is a source (no upstream edges).
    pub fn is_source(&self) -> bool {
        self.expected_eos == 0
    }

    /// Run one producer iteration (sources only).
    pub fn run_iteration(&mut self, datum: Option<Value>) -> Result<Emissions, DataflowError> {
        let input = datum.map(|v| ("input".to_string(), v));
        self.invoke(input)
    }

    /// Process one incoming datum.
    pub fn run_datum(&mut self, port: String, value: Value) -> Result<Emissions, DataflowError> {
        self.invoke(Some((port, value)))
    }

    fn invoke(&mut self, input: Option<(String, Value)>) -> Result<Emissions, DataflowError> {
        let it = self.iteration;
        self.iteration += 1;
        self.stats.processed += 1;
        let mut call_sink = std::mem::take(&mut self.sink);
        call_sink.emitted.clear();
        let borrowed = input.as_ref().map(|(p, v)| (p.as_str(), v.clone()));
        let result = self.pe.process(borrowed, it, &mut call_sink);
        let mut emissions =
            Emissions { printed: std::mem::take(&mut call_sink.printed), ..Default::default() };
        let emitted = std::mem::take(&mut call_sink.emitted);
        self.sink = call_sink;
        result?;
        self.stats.emitted += emitted.len() as u64;
        for (port, value) in emitted {
            let mut routed_any = false;
            for edge in self.outgoing.iter_mut().filter(|e| e.from_port == port) {
                routed_any = true;
                for dest_index in edge.router.route(&value) {
                    emissions.routed.push(RoutedDatum {
                        dest: InstanceId { node: edge.to_node, index: dest_index },
                        port: edge.to_port.clone(),
                        value: value.clone(),
                    });
                }
            }
            if !routed_any && self.terminal_ports.contains(&port) {
                emissions.collected.push((port, value));
            }
        }
        Ok(emissions)
    }

    /// Downstream instances that must be told when this instance finishes:
    /// every instance of every successor node, once per outgoing edge.
    pub fn eos_targets(&self, plan: &ConcretePlan) -> Vec<InstanceId> {
        let mut out = Vec::new();
        for edge in &self.outgoing {
            for i in 0..plan.count(edge.to_node) {
                out.push(InstanceId { node: edge.to_node, index: i });
            }
        }
        out
    }

    /// Grouping of the first outgoing edge on `port` (used by tests).
    pub fn grouping_of(&self, port: &str) -> Option<Grouping> {
        self.outgoing.iter().find(|e| e.from_port == port).map(|e| e.router.grouping())
    }
}

/// Merge per-instance stats into per-PE aggregates.
pub fn merge_stats(
    per_instance: impl IntoIterator<Item = (String, InstanceStats)>,
    plan_counts: &BTreeMap<String, usize>,
) -> super::RunStats {
    let mut stats = super::RunStats { instances: plan_counts.clone(), ..Default::default() };
    for (name, s) in per_instance {
        *stats.processed.entry(name.clone()).or_insert(0) += s.processed;
        *stats.emitted.entry(name).or_insert(0) += s.emitted;
    }
    stats
}

/// Plan-level instance counts keyed by PE name.
pub fn plan_counts(graph: &WorkflowGraph, plan: &ConcretePlan) -> BTreeMap<String, usize> {
    graph.nodes().iter().enumerate().map(|(i, n)| (n.meta().name.clone(), plan.count(NodeId(i)))).collect()
}

// ---------------------------------------------------------------------------
// Generic worker loop shared by the parallel mappings
// ---------------------------------------------------------------------------

/// A message as seen by a receiving instance.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportMsg {
    /// A datum for one of this instance's input ports.
    Data {
        /// Destination input port.
        port: String,
        /// Payload.
        value: Value,
    },
    /// One upstream instance finished.
    Eos,
}

/// The transport a parallel mapping provides to each worker.
pub trait Transport {
    /// Deliver a datum to another instance.
    fn send_data(&mut self, dest: InstanceId, port: &str, value: &Value) -> Result<(), DataflowError>;
    /// Deliver an end-of-stream signal to another instance.
    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError>;
    /// Block for the next message addressed to this instance.
    fn recv(&mut self) -> Result<TransportMsg, DataflowError>;
}

/// Everything a worker brings home after its instance finishes.
#[derive(Debug, Default)]
pub struct WorkerOutcome {
    /// PE name.
    pub node_name: String,
    /// Counters.
    pub stats: InstanceStats,
    /// Terminal emissions `(pe, port, value)`.
    pub outputs: Vec<(String, String, Value)>,
    /// Captured print lines.
    pub printed: Vec<String>,
}

/// Drive one instance to completion over `transport`.
///
/// Sources run the configured invocations (striped across sibling source
/// instances), then signal EOS downstream. Sinks/relays consume data until
/// every upstream instance has signalled EOS, then propagate EOS.
pub fn run_worker<T: Transport>(
    mut runner: InstanceRunner,
    mut transport: T,
    plan: &ConcretePlan,
    options: &super::RunOptions,
) -> Result<WorkerOutcome, DataflowError> {
    let mut outcome = WorkerOutcome { node_name: runner.node_name.clone(), ..Default::default() };
    let deliver = |runner: &InstanceRunner,
                   emissions: Emissions,
                   transport: &mut T,
                   outcome: &mut WorkerOutcome|
     -> Result<(), DataflowError> {
        for r in emissions.routed {
            transport.send_data(r.dest, &r.port, &r.value)?;
        }
        for (port, value) in emissions.collected {
            outcome.outputs.push((runner.node_name.clone(), port, value));
        }
        outcome.printed.extend(emissions.printed);
        Ok(())
    };

    if runner.is_source() {
        let siblings = plan.count(runner.inst.node);
        let my_index = runner.inst.index;
        for i in 0..options.invocations() {
            if i % siblings != my_index {
                continue;
            }
            let emissions = runner.run_iteration(options.datum_for(i))?;
            deliver(&runner, emissions, &mut transport, &mut outcome)?;
        }
    } else {
        let mut remaining = runner.expected_eos;
        while remaining > 0 {
            match transport.recv()? {
                TransportMsg::Data { port, value } => {
                    let emissions = runner.run_datum(port, value)?;
                    deliver(&runner, emissions, &mut transport, &mut outcome)?;
                }
                TransportMsg::Eos => remaining -= 1,
            }
        }
    }
    for dest in runner.eos_targets(plan) {
        transport.send_eos(dest)?;
    }
    outcome.stats = runner.stats;
    Ok(outcome)
}

/// Fold worker outcomes into a [`super::RunResult`].
pub fn merge_outcomes(outcomes: Vec<WorkerOutcome>, counts: &BTreeMap<String, usize>) -> super::RunResult {
    let mut result = super::RunResult::default();
    let mut stats_parts = Vec::new();
    for o in outcomes {
        for (pe, port, value) in o.outputs {
            result.outputs.entry((pe, port)).or_default().push(value);
        }
        result.printed.extend(o.printed);
        stats_parts.push((o.node_name, o.stats));
    }
    result.stats = merge_stats(stats_parts, counts);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkflowGraph;
    use crate::pe::{iterative_fn, producer_fn};

    fn graph_and_plan() -> (WorkflowGraph, ConcretePlan) {
        let mut g = WorkflowGraph::new("t");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        g.connect(a, "output", b, "input").unwrap();
        let plan = ConcretePlan::distribute(&g, 3).unwrap();
        (g, plan)
    }

    #[test]
    fn source_runner_routes_round_robin() {
        let (g, plan) = graph_and_plan();
        assert_eq!(plan.instances, vec![1, 2]);
        let mut runner = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        assert!(runner.is_source());
        let e1 = runner.run_iteration(None).unwrap();
        let e2 = runner.run_iteration(None).unwrap();
        assert_eq!(e1.routed[0].dest.index, 0);
        assert_eq!(e2.routed[0].dest.index, 1);
        assert_eq!(e1.routed[0].port, "input");
        assert_eq!(runner.stats.processed, 2);
        assert_eq!(runner.stats.emitted, 2);
    }

    #[test]
    fn terminal_collection() {
        let (g, plan) = graph_and_plan();
        let mut b = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(1), index: 0 }).unwrap();
        assert!(!b.is_source());
        assert_eq!(b.expected_eos, 1);
        let e = b.run_datum("input".into(), Value::Int(7)).unwrap();
        assert!(e.routed.is_empty());
        assert_eq!(e.collected, vec![("output".to_string(), Value::Int(7))]);
    }

    #[test]
    fn eos_targets_cover_all_downstream_instances() {
        let (g, plan) = graph_and_plan();
        let a = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let targets = a.eos_targets(&plan);
        assert_eq!(targets.len(), 2);
        assert!(targets.iter().all(|t| t.node == NodeId(1)));
    }

    #[test]
    fn iteration_counter_feeds_producer() {
        let (g, plan) = graph_and_plan();
        let mut a = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let e1 = a.run_iteration(None).unwrap();
        let e2 = a.run_iteration(None).unwrap();
        assert_eq!(e1.routed[0].value, Value::Int(0));
        assert_eq!(e2.routed[0].value, Value::Int(1));
    }
}
