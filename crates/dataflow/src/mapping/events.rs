//! The enactment event stream: the runtime's results as they happen.
//!
//! # Emit-then-fold
//!
//! Before this module existed, the runtime *accumulated*: every worker
//! collected its terminal outputs, prints and counters into per-instance
//! `Vec`s, and nothing was observable until the collect stage folded the
//! finished run into one [`RunResult`]. That batch contract made "time to
//! first output" equal "time to last output" — hostile to long-running and
//! source-driven workloads.
//!
//! The contract is now inverted. An enactment is an **ordered stream of
//! [`RunEvent`]s** — plan ready, instance lifecycle, terminal-port
//! outputs, captured prints, final stats — and the batch [`RunResult`] is
//! *defined* as a fold over that stream ([`EventFold`]). The runtime pipes
//! every event through one [`EventSink`] which (a) hands it to an optional
//! [`RunObserver`] the moment it exists and (b) folds it into the result
//! the caller gets back. Because the returned result and the observed
//! stream are produced by the same fold from the same sequence, folding a
//! recorded stream reproduces the batch result bit-for-bit — the property
//! the cross-mapping equivalence suites assert.
//!
//! # Ordering and cost
//!
//! * Event `seq` numbers are assigned at the sink: a single total order
//!   per run, per-instance emission order preserved (each worker emits its
//!   own events in program order).
//! * Without an observer the parallel runtime buffers each worker's events
//!   locally and folds them at join time in dense-instance order — the
//!   pre-stream accumulate-then-collect cost profile (one lock per worker,
//!   deterministic result order). With an observer attached, workers flush
//!   per emission burst so events become visible while upstream instances
//!   are still producing.
//! * Events carry `Arc<str>` PE/port names cloned from the plan's interned
//!   tables — emitting an event never allocates a name, preserving the
//!   zero-allocation datapath property (`alloc_interning.rs`).

use super::{RunResult, RunStats};
use laminar_json::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One observable step of an enactment, in stream order.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// The plan stage finished: instance counts per PE, in node order.
    PlanReady {
        /// `(pe_name, instance_count)` for every node of the graph.
        pes: Vec<(Arc<str>, usize)>,
    },
    /// An instance began executing.
    InstanceStarted {
        /// PE name.
        pe: Arc<str>,
        /// Instance index within the PE.
        instance: usize,
    },
    /// A value surfaced on a terminal (unconnected) output port.
    Output {
        /// PE name.
        pe: Arc<str>,
        /// Instance index within the PE.
        instance: usize,
        /// Terminal port name.
        port: Arc<str>,
        /// The emitted value.
        value: Value,
    },
    /// A `print` line was captured.
    Print {
        /// PE name.
        pe: Arc<str>,
        /// Instance index within the PE.
        instance: usize,
        /// The captured line.
        line: String,
    },
    /// An instance finished (its end-of-stream): final counters.
    InstanceFinished {
        /// PE name.
        pe: Arc<str>,
        /// Instance index within the PE.
        instance: usize,
        /// Data (or producer iterations) the instance processed.
        processed: u64,
        /// Emission attempts the instance made.
        emitted: u64,
    },
    /// An epoch boundary: the enactment is quiescent (no data in flight)
    /// and every instance's durable state has been captured. `state` is
    /// the checkpoint payload — an array of per-instance snapshots in
    /// dense plan order (see `InstanceRunner::snapshot`) — which the
    /// engine's journal persists; a resumed run rebuilds its instances
    /// from the latest `Epoch` and replays the events that preceded it.
    /// Folds as a marker, not data: `fold(events with epochs)` equals
    /// `fold(events without)`, which is what makes the refold identity
    /// `fold(checkpoint + replayed events) == fold(batch)` well-defined.
    Epoch {
        /// Epoch number, starting at 1 (epoch `k` covers the first
        /// `k * checkpoint_every` source iterations).
        id: u64,
        /// Per-instance snapshots, in dense plan-instance order.
        state: Value,
    },
    /// The run completed: final stats (timings are only known here).
    /// Terminal event of a successful stream.
    Finished {
        /// The completed run's statistics.
        stats: RunStats,
    },
    /// The run was stopped by its [`super::CancelToken`] before
    /// completing. Terminal event of a cancelled stream — everything
    /// before it is a valid prefix of the run's event stream, and folding
    /// that prefix is the cancelled run's result. Distinguishes "stopped
    /// on request" from a failure.
    Cancelled,
}

impl RunEvent {
    /// Wire form of one event (the `/events` endpoint's array elements).
    pub fn to_value(&self, seq: u64) -> Value {
        let mut v = Value::Null;
        v.set("seq", seq as i64);
        match self {
            RunEvent::PlanReady { pes } => {
                let mut m = Value::Null;
                for (pe, n) in pes {
                    m.set(pe, *n);
                }
                v.set("type", "plan").set("pes", m);
            }
            RunEvent::InstanceStarted { pe, instance } => {
                v.set("type", "started").set("pe", &**pe).set("instance", *instance);
            }
            RunEvent::Output { pe, instance, port, value } => {
                v.set("type", "output")
                    .set("pe", &**pe)
                    .set("instance", *instance)
                    .set("port", &**port)
                    .set("value", value.clone());
            }
            RunEvent::Print { pe, instance, line } => {
                v.set("type", "print").set("pe", &**pe).set("instance", *instance).set("line", line.as_str());
            }
            RunEvent::InstanceFinished { pe, instance, processed, emitted } => {
                v.set("type", "instance_done")
                    .set("pe", &**pe)
                    .set("instance", *instance)
                    .set("processed", *processed as i64)
                    .set("emitted", *emitted as i64);
            }
            RunEvent::Epoch { id, state } => {
                v.set("type", "epoch").set("epoch", *id as i64).set("state", state.clone());
            }
            RunEvent::Finished { stats } => {
                v.set("type", "finished")
                    .set("elapsed_us", stats.elapsed.as_micros() as i64)
                    .set("plan_us", stats.timings.plan.as_micros() as i64)
                    .set("enact_us", stats.timings.enact.as_micros() as i64)
                    .set("collect_us", stats.timings.collect.as_micros() as i64)
                    .set("compile_us", stats.timings.compile.as_micros() as i64)
                    .set("events", stats.events as i64);
                if let Some(d) = stats.first_output {
                    v.set("first_output_us", d.as_micros() as i64);
                }
            }
            RunEvent::Cancelled => {
                v.set("type", "cancelled");
            }
        }
        v
    }

    /// Parse the wire form back into an event (the inverse of
    /// [`RunEvent::to_value`], modulo the timing fields `Finished` carries
    /// at microsecond resolution). `None` for values that are not run
    /// events — notably the pool's `done`/`failed` job markers — so a
    /// client can `filter_map` a recorded `/events` log straight into
    /// [`fold_events`].
    pub fn from_value(v: &Value) -> Option<RunEvent> {
        let pe = || v["pe"].as_str().map(Arc::<str>::from);
        let instance = || v["instance"].as_i64().map(|i| i.max(0) as usize);
        Some(match v["type"].as_str()? {
            "plan" => {
                let pes = v["pes"]
                    .as_object()?
                    .iter()
                    .map(|(name, n)| {
                        (Arc::<str>::from(name.as_str()), n.as_i64().unwrap_or(0).max(0) as usize)
                    })
                    .collect();
                RunEvent::PlanReady { pes }
            }
            "started" => RunEvent::InstanceStarted { pe: pe()?, instance: instance()? },
            "output" => RunEvent::Output {
                pe: pe()?,
                instance: instance()?,
                port: v["port"].as_str().map(Arc::<str>::from)?,
                value: v["value"].clone(),
            },
            "print" => {
                RunEvent::Print { pe: pe()?, instance: instance()?, line: v["line"].as_str()?.to_string() }
            }
            "instance_done" => RunEvent::InstanceFinished {
                pe: pe()?,
                instance: instance()?,
                processed: v["processed"].as_i64().unwrap_or(0).max(0) as u64,
                emitted: v["emitted"].as_i64().unwrap_or(0).max(0) as u64,
            },
            "epoch" => RunEvent::Epoch {
                id: v["epoch"].as_i64().unwrap_or(0).max(0) as u64,
                state: v["state"].clone(),
            },
            "finished" => {
                let us = |field: &str| Duration::from_micros(v[field].as_i64().unwrap_or(0).max(0) as u64);
                RunEvent::Finished {
                    stats: RunStats {
                        elapsed: us("elapsed_us"),
                        timings: super::StageTimings {
                            plan: us("plan_us"),
                            enact: us("enact_us"),
                            collect: us("collect_us"),
                            compile: us("compile_us"),
                        },
                        events: v["events"].as_i64().unwrap_or(0).max(0) as u64,
                        first_output: v["first_output_us"]
                            .as_i64()
                            .map(|d| Duration::from_micros(d.max(0) as u64)),
                        ..Default::default()
                    },
                }
            }
            "cancelled" => RunEvent::Cancelled,
            _ => return None,
        })
    }
}

/// A sink for live enactment events. Implementations must tolerate being
/// called from several worker threads (the sink serializes calls, but the
/// observer travels across threads).
pub trait RunObserver: Send + Sync {
    /// One event, with its stream sequence number. Called in `seq` order.
    fn on_event(&self, seq: u64, event: &RunEvent);

    /// Backpressure seam: the runtime calls this at source-iteration
    /// boundaries (never while holding the sink lock), giving the
    /// observer a chance to *block the producer* until downstream has
    /// capacity again. The engine's checkpoint-horizon event log parks
    /// here while a slow consumer catches up; the default is a no-op so
    /// plain observers (recorders, latency probes) cost nothing.
    fn throttle(&self) {}
}

/// Fold an event stream back into a [`RunResult`] — the definition of the
/// batch result. Feed events in stream order; [`EventFold::finish`]
/// returns the folded result.
///
/// Outputs and stats keys are accumulated under the events' shared names
/// (refcount clones); strings are materialized once per key at finish.
#[derive(Debug, Default)]
pub struct EventFold {
    outputs: BTreeMap<(Arc<str>, Arc<str>), Vec<Value>>,
    printed: Vec<String>,
    stats: RunStats,
    /// Events folded, excluding the terminal [`RunEvent::Finished`].
    count: u64,
}

impl EventFold {
    /// Fold one event.
    pub fn push(&mut self, event: RunEvent) {
        match event {
            RunEvent::PlanReady { pes } => {
                self.count += 1;
                for (pe, n) in pes {
                    self.stats.instances.insert(pe.to_string(), n);
                }
            }
            RunEvent::InstanceStarted { .. } => self.count += 1,
            RunEvent::Output { pe, port, value, .. } => {
                self.count += 1;
                self.outputs.entry((pe, port)).or_default().push(value);
            }
            RunEvent::Print { line, .. } => {
                self.count += 1;
                self.printed.push(line);
            }
            RunEvent::InstanceFinished { pe, processed, emitted, .. } => {
                self.count += 1;
                *self.stats.processed.entry(pe.to_string()).or_insert(0) += processed;
                *self.stats.emitted.entry(pe.to_string()).or_insert(0) += emitted;
            }
            // Timing facts only the finished run knows; not counted, so a
            // recorded stream (which includes Finished) folds to the same
            // `events` figure as the live fold (which never sees it).
            RunEvent::Finished { stats } => {
                self.stats.elapsed = stats.elapsed;
                self.stats.timings = stats.timings;
                self.stats.first_output = stats.first_output;
            }
            // A terminal marker, not data: folding a cancelled stream
            // yields exactly the prefix-fold of the events before it.
            RunEvent::Cancelled => {}
            // A checkpoint marker, not data: folding a checkpointed
            // stream yields the same outputs/prints/counters as the
            // uncheckpointed one.
            RunEvent::Epoch { .. } => {}
        }
    }

    /// The folded batch result.
    pub fn finish(mut self) -> RunResult {
        self.stats.events = self.count;
        let mut result = RunResult { printed: self.printed, stats: self.stats, ..Default::default() };
        for ((pe, port), values) in self.outputs {
            result.outputs.insert((pe.to_string(), port.to_string()), values);
        }
        result
    }
}

/// Fold a recorded stream in one call (tests, clients replaying a wire
/// log).
pub fn fold_events(events: impl IntoIterator<Item = RunEvent>) -> RunResult {
    let mut fold = EventFold::default();
    for ev in events {
        fold.push(ev);
    }
    fold.finish()
}

struct SinkInner {
    fold: EventFold,
    seq: u64,
    enact_start: Option<Instant>,
    first_output: Option<Duration>,
    /// Whether events reach the sink as they happen. True for the
    /// sequential runtime (always) and for observed parallel runs;
    /// false for unobserved parallel runs, whose workers buffer until
    /// join — there a first-output timestamp would be meaningless.
    realtime: bool,
}

/// The runtime's event funnel: assigns sequence numbers, tees each event
/// to the observer (if any), and folds it into the nascent [`RunResult`].
/// Shared by every worker of one enactment.
pub struct EventSink {
    observer: Option<Arc<dyn RunObserver>>,
    inner: Mutex<SinkInner>,
}

impl EventSink {
    /// A sink for one enactment.
    pub fn new(observer: Option<Arc<dyn RunObserver>>) -> EventSink {
        let realtime = observer.is_some();
        EventSink {
            observer,
            inner: Mutex::new(SinkInner {
                fold: EventFold::default(),
                seq: 0,
                enact_start: None,
                first_output: None,
                realtime,
            }),
        }
    }

    /// Whether an observer is attached — workers flush per burst when
    /// live, at end-of-instance otherwise.
    pub fn live(&self) -> bool {
        self.observer.is_some()
    }

    /// Declare that events reach this sink as they happen even without an
    /// observer (the sequential runtime), enabling `first_output` timing.
    pub fn set_realtime(&self) {
        self.inner.lock().realtime = true;
    }

    /// Mark the start of the enact stage (the zero of `first_output`).
    pub fn start_enact(&self) {
        self.inner.lock().enact_start = Some(Instant::now());
    }

    /// Push one event into the stream.
    pub fn push(&self, event: RunEvent) {
        let mut inner = self.inner.lock();
        self.push_locked(&mut inner, event);
    }

    /// Push a worker's buffered events under one lock, draining `buf`.
    pub fn extend(&self, buf: &mut Vec<RunEvent>) {
        if buf.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for ev in buf.drain(..) {
            self.push_locked(&mut inner, ev);
        }
    }

    /// Fold an already-observed prefix into the sink without re-observing
    /// it: the resume path replays journaled events through here so the
    /// resumed run's `RunResult` covers the whole job, while the observer
    /// (whose log was pre-filled separately) only sees the live tail.
    /// Advances `seq` so live events continue the journaled numbering.
    pub fn preload(&self, events: impl IntoIterator<Item = RunEvent>) {
        let mut inner = self.inner.lock();
        for ev in events {
            inner.seq += 1;
            inner.fold.push(ev);
        }
    }

    /// Give the observer a chance to block this producer until downstream
    /// capacity frees up ([`RunObserver::throttle`]). Deliberately does
    /// *not* take the sink lock: a parked worker must never hold up peers
    /// trying to push events.
    pub fn throttle(&self) {
        if let Some(observer) = &self.observer {
            observer.throttle();
        }
    }

    fn push_locked(&self, inner: &mut SinkInner, event: RunEvent) {
        if inner.realtime && inner.first_output.is_none() {
            if let RunEvent::Output { .. } = &event {
                inner.first_output = Some(inner.enact_start.map(|t| t.elapsed()).unwrap_or_default());
            }
        }
        if let Some(observer) = &self.observer {
            observer.on_event(inner.seq, &event);
        }
        inner.seq += 1;
        inner.fold.push(event);
    }

    /// Take the fold (collect stage) along with the observed time-to-first-
    /// output. The sink stays usable for the terminal [`RunEvent::Finished`].
    pub fn take_fold(&self) -> (EventFold, Option<Duration>) {
        let mut inner = self.inner.lock();
        (std::mem::take(&mut inner.fold), inner.first_output)
    }

    /// Emit the terminal event carrying the completed run's stats. Only
    /// the observer sees it — the fold was already taken.
    pub fn emit_finished(&self, stats: &RunStats) {
        self.emit_terminal(&RunEvent::Finished { stats: stats.clone() });
    }

    /// Emit the [`RunEvent::Cancelled`] terminal marker sealing a
    /// cancelled stream. Only the observer sees it — the runtime returns
    /// [`crate::DataflowError::Cancelled`] instead of a result, so there
    /// is no fold to feed.
    pub fn emit_cancelled(&self) {
        self.emit_terminal(&RunEvent::Cancelled);
    }

    fn emit_terminal(&self, event: &RunEvent) {
        if let Some(observer) = &self.observer {
            let mut inner = self.inner.lock();
            let seq = inner.seq;
            inner.seq += 1;
            drop(inner);
            observer.on_event(seq, event);
        }
    }
}

/// An observer that records the stream (with arrival offsets) — the
/// harness behind the equivalence suites and the `streaming_latency`
/// bench.
pub struct RecordingObserver {
    started: Instant,
    events: Mutex<Vec<(u64, Duration, RunEvent)>>,
}

impl RecordingObserver {
    /// A fresh recorder; offsets are measured from this call.
    pub fn new() -> Arc<RecordingObserver> {
        Arc::new(RecordingObserver { started: Instant::now(), events: Mutex::new(Vec::new()) })
    }

    /// Drain the recorded `(seq, arrival_offset, event)` triples.
    pub fn take(&self) -> Vec<(u64, Duration, RunEvent)> {
        std::mem::take(&mut self.events.lock())
    }
}

impl RunObserver for RecordingObserver {
    fn on_event(&self, seq: u64, event: &RunEvent) {
        self.events.lock().push((seq, self.started.elapsed(), event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn fold_reconstructs_outputs_prints_and_counters() {
        let events = vec![
            RunEvent::PlanReady { pes: vec![(arc("A"), 1), (arc("B"), 2)] },
            RunEvent::InstanceStarted { pe: arc("A"), instance: 0 },
            RunEvent::Output { pe: arc("B"), instance: 0, port: arc("out"), value: Value::Int(1) },
            RunEvent::Print { pe: arc("B"), instance: 1, line: "hello".into() },
            RunEvent::Output { pe: arc("B"), instance: 1, port: arc("out"), value: Value::Int(2) },
            RunEvent::InstanceFinished { pe: arc("A"), instance: 0, processed: 5, emitted: 5 },
            RunEvent::InstanceFinished { pe: arc("B"), instance: 0, processed: 2, emitted: 1 },
            RunEvent::InstanceFinished { pe: arc("B"), instance: 1, processed: 3, emitted: 1 },
        ];
        let n = events.len() as u64;
        let result = fold_events(events);
        assert_eq!(result.port_values("B", "out"), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(result.printed, vec!["hello"]);
        assert_eq!(result.stats.processed["A"], 5);
        assert_eq!(result.stats.processed["B"], 5);
        assert_eq!(result.stats.emitted["B"], 2);
        assert_eq!(result.stats.instances["B"], 2);
        assert_eq!(result.stats.events, n);
    }

    #[test]
    fn finished_event_carries_timings_without_counting() {
        let stats = RunStats {
            elapsed: Duration::from_millis(7),
            first_output: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let result = fold_events(vec![
            RunEvent::InstanceStarted { pe: arc("A"), instance: 0 },
            RunEvent::Finished { stats },
        ]);
        assert_eq!(result.stats.elapsed, Duration::from_millis(7));
        assert_eq!(result.stats.first_output, Some(Duration::from_millis(2)));
        assert_eq!(result.stats.events, 1, "Finished is not a counted event");
    }

    #[test]
    fn sink_assigns_sequential_seq_and_tees_observer() {
        let recorder = RecordingObserver::new();
        let sink = EventSink::new(Some(Arc::clone(&recorder) as Arc<dyn RunObserver>));
        sink.start_enact();
        sink.push(RunEvent::InstanceStarted { pe: arc("A"), instance: 0 });
        let mut buf = vec![
            RunEvent::Output { pe: arc("A"), instance: 0, port: arc("out"), value: Value::Int(9) },
            RunEvent::InstanceFinished { pe: arc("A"), instance: 0, processed: 1, emitted: 1 },
        ];
        sink.extend(&mut buf);
        assert!(buf.is_empty());
        let (fold, first_output) = sink.take_fold();
        assert!(first_output.is_some(), "first Output timestamped");
        let result = fold.finish();
        sink.emit_finished(&result.stats);
        let recorded = recorder.take();
        let seqs: Vec<u64> = recorded.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(matches!(recorded.last().unwrap().2, RunEvent::Finished { .. }));
        // Folding the recorded stream reproduces the sink's own fold.
        let refolded = fold_events(recorded.into_iter().map(|(_, _, e)| e));
        assert_eq!(refolded.outputs, result.outputs);
        assert_eq!(refolded.stats, result.stats);
    }

    #[test]
    fn wire_form_tags_every_variant() {
        let cases = [
            (RunEvent::PlanReady { pes: vec![(arc("A"), 2)] }, "plan"),
            (RunEvent::InstanceStarted { pe: arc("A"), instance: 1 }, "started"),
            (RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(3) }, "output"),
            (RunEvent::Print { pe: arc("A"), instance: 0, line: "x".into() }, "print"),
            (
                RunEvent::InstanceFinished { pe: arc("A"), instance: 0, processed: 1, emitted: 2 },
                "instance_done",
            ),
            (RunEvent::Epoch { id: 3, state: Value::Array(vec![Value::Int(1)]) }, "epoch"),
            (RunEvent::Finished { stats: RunStats::default() }, "finished"),
            (RunEvent::Cancelled, "cancelled"),
        ];
        for (i, (ev, tag)) in cases.into_iter().enumerate() {
            let v = ev.to_value(i as u64);
            assert_eq!(v["type"].as_str(), Some(tag));
            assert_eq!(v["seq"].as_i64(), Some(i as i64));
        }
    }

    #[test]
    fn wire_form_round_trips_through_from_value() {
        let cases = [
            RunEvent::PlanReady { pes: vec![(arc("A"), 2), (arc("B"), 1)] },
            RunEvent::InstanceStarted { pe: arc("A"), instance: 1 },
            RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(3) },
            RunEvent::Print { pe: arc("A"), instance: 0, line: "x".into() },
            RunEvent::InstanceFinished { pe: arc("A"), instance: 0, processed: 1, emitted: 2 },
            RunEvent::Epoch { id: 2, state: Value::Array(vec![Value::Null, Value::Int(5)]) },
            RunEvent::Cancelled,
        ];
        for ev in cases {
            let back = RunEvent::from_value(&ev.to_value(7)).unwrap();
            assert_eq!(back, ev);
        }
        // Finished round-trips the timing facts the fold consumes, at
        // microsecond resolution.
        let stats = RunStats {
            elapsed: Duration::from_micros(1234),
            first_output: Some(Duration::from_micros(56)),
            events: 9,
            ..Default::default()
        };
        match RunEvent::from_value(&RunEvent::Finished { stats }.to_value(0)).unwrap() {
            RunEvent::Finished { stats } => {
                assert_eq!(stats.elapsed, Duration::from_micros(1234));
                assert_eq!(stats.first_output, Some(Duration::from_micros(56)));
                assert_eq!(stats.events, 9);
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        // Pool job markers and junk are not run events.
        let mut done = Value::Null;
        done.set("type", "done");
        assert!(RunEvent::from_value(&done).is_none());
        assert!(RunEvent::from_value(&Value::Null).is_none());
    }

    #[test]
    fn cancelled_marker_folds_as_a_no_op() {
        let events = vec![
            RunEvent::InstanceStarted { pe: arc("A"), instance: 0 },
            RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(4) },
        ];
        let prefix = fold_events(events.clone());
        let cancelled = fold_events(events.into_iter().chain([RunEvent::Cancelled]));
        assert_eq!(cancelled.outputs, prefix.outputs);
        assert_eq!(cancelled.stats, prefix.stats, "Cancelled is not counted and carries no stats");
    }

    #[test]
    fn epoch_marker_folds_as_a_no_op() {
        let events = vec![
            RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(4) },
            RunEvent::Print { pe: arc("A"), instance: 0, line: "p".into() },
        ];
        let plain = fold_events(events.clone());
        let mut with_epochs = vec![events[0].clone()];
        with_epochs.push(RunEvent::Epoch { id: 1, state: Value::Array(vec![Value::Int(7)]) });
        with_epochs.push(events[1].clone());
        with_epochs.push(RunEvent::Epoch { id: 2, state: Value::Array(vec![Value::Int(9)]) });
        let folded = fold_events(with_epochs);
        assert_eq!(folded.outputs, plain.outputs);
        assert_eq!(folded.printed, plain.printed);
        assert_eq!(folded.stats, plain.stats, "Epoch is a marker, not data");
    }

    #[test]
    fn throttle_reaches_the_observer_without_the_sink_lock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Throttler {
            calls: AtomicU64,
        }
        impl RunObserver for Throttler {
            fn on_event(&self, _seq: u64, _event: &RunEvent) {}
            fn throttle(&self) {
                self.calls.fetch_add(1, Ordering::SeqCst);
            }
        }
        let obs = Arc::new(Throttler { calls: AtomicU64::new(0) });
        let sink = EventSink::new(Some(Arc::clone(&obs) as Arc<dyn RunObserver>));
        // Holding the sink lock while throttling must not deadlock: the
        // seam bypasses the inner mutex entirely.
        let _guard = sink.inner.lock();
        sink.throttle();
        sink.throttle();
        assert_eq!(obs.calls.load(Ordering::SeqCst), 2);
        // Observer-less sinks throttle for free.
        let plain = EventSink::new(None);
        plain.throttle();
    }

    #[test]
    fn default_throttle_is_a_no_op() {
        let recorder = RecordingObserver::new();
        let sink = EventSink::new(Some(Arc::clone(&recorder) as Arc<dyn RunObserver>));
        sink.throttle();
        assert!(recorder.take().is_empty(), "default throttle emits nothing");
    }

    #[test]
    fn preload_folds_without_observing_and_advances_seq() {
        let recorder = RecordingObserver::new();
        let sink = EventSink::new(Some(Arc::clone(&recorder) as Arc<dyn RunObserver>));
        sink.preload(vec![
            RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(1) },
            RunEvent::Epoch { id: 1, state: Value::Null },
        ]);
        sink.push(RunEvent::Output { pe: arc("A"), instance: 0, port: arc("o"), value: Value::Int(2) });
        let recorded = recorder.take();
        assert_eq!(recorded.len(), 1, "preloaded events bypass the observer");
        assert_eq!(recorded[0].0, 2, "live seq continues after the preloaded prefix");
        let (fold, _) = sink.take_fold();
        let result = fold.finish();
        assert_eq!(result.port_values("A", "o"), &[Value::Int(1), Value::Int(2)]);
    }
}
