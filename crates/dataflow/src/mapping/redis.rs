//! The Redis mapping: broker-queue enactment over [`laminar_redisim`].
//!
//! Every PE instance owns one broker list used as its work queue; workers
//! communicate exclusively through the broker (serialized payloads), the
//! way dispel4py's Redis mapping coordinates its worker processes.

use super::cancel::CancelToken;
use super::mpi::{decode_pairs, encode_pairs};
use super::runtime::{Connector, Runtime};
use super::worker::{drain_batch_groups, RoutedDatum, Transport, TransportMsg};
use super::{Mapping, MappingKind, RunOptions, RunResult};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use laminar_codec::pickle;
use laminar_json::jobj;
use laminar_redisim::{Broker, BrokerError, RedisClient};
use std::time::Duration;

/// Broker-queue enactment. By default each run spins up a private broker;
/// inject one with [`RedisMapping::with_broker`] to observe queue stats or
/// to share a broker across runs (closer to a real deployment).
#[derive(Default)]
pub struct RedisMapping {
    broker: Option<Broker>,
}

impl RedisMapping {
    /// Use an externally-managed broker.
    pub fn with_broker(broker: Broker) -> RedisMapping {
        RedisMapping { broker: Some(broker) }
    }
}

fn queue_key(inst: InstanceId) -> String {
    format!("laminar:q:{}:{}", inst.node.0, inst.index)
}

struct RedisTransport {
    client: RedisClient,
    my_queue: String,
    plan: ConcretePlan,
    timeout: std::time::Duration,
    /// Unbounded (run-until-cancelled) runs retry an empty-queue pop
    /// instead of treating it as starvation: with no invocation bound
    /// there is no moment by which a message *must* have arrived, and
    /// cancellation guarantees EOS frames eventually wake every relay.
    retry_on_timeout: bool,
    /// The run's token: the retry loop bails out once it fires, so a
    /// wedged relay (e.g. an upstream that died without EOS) can always
    /// be unstuck by `DELETE .../job/{id}` or pool shutdown.
    cancel: CancelToken,
}

impl RedisTransport {
    fn push(&self, dest: InstanceId, frame: Vec<u8>) -> Result<(), DataflowError> {
        self.client
            .rpush(&queue_key(dest), frame)
            .map(|_| ())
            .map_err(|e| DataflowError::Enactment(format!("broker push failed: {e}")))
    }
}

impl Transport for RedisTransport {
    fn send_batch(&mut self, batch: &mut Vec<RoutedDatum>) -> Result<(), DataflowError> {
        // One pickled multi-datum frame — one broker round-trip — per
        // destination per emission burst, not one per datum.
        let this = &*self;
        drain_batch_groups(batch, |dest, group| {
            this.push(dest, pickle::dumps(&jobj! { "kind" => "data", "items" => encode_pairs(group) }))
        })
    }

    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError> {
        self.push(dest, pickle::dumps(&jobj! { "kind" => "eos" }))
    }

    fn recv(&mut self) -> Result<TransportMsg, DataflowError> {
        let bytes = loop {
            match self.client.blpop(&self.my_queue, self.timeout) {
                Ok(bytes) => break bytes,
                // Cancelled: stop retrying. Normally EOS from the wound-
                // down sources arrives first; this is the escape hatch
                // when a peer died without sending it.
                Err(BrokerError::Timeout) if self.cancel.is_cancelled() => {
                    return Err(DataflowError::Cancelled)
                }
                Err(BrokerError::Timeout) if self.retry_on_timeout => continue,
                Err(BrokerError::Timeout) => {
                    return Err(DataflowError::Enactment(format!(
                        "queue '{}' starved: no message within {:?}",
                        self.my_queue, self.timeout
                    )))
                }
                Err(other) => return Err(DataflowError::Enactment(format!("broker pop failed: {other}"))),
            }
        };
        let mut v = pickle::loads(&bytes)
            .map_err(|e| DataflowError::Enactment(format!("corrupt queue frame: {e}")))?;
        match v["kind"].as_str() {
            Some("eos") => Ok(TransportMsg::Eos),
            Some("data") => {
                // A data frame without a well-formed item list is corrupt;
                // it must surface as an error, never mis-route as a default
                // port's data.
                let items = match v.as_object_mut().and_then(|m| m.remove("items")) {
                    Some(items) => items,
                    None => {
                        return Err(DataflowError::Enactment(
                            "corrupt queue frame: data frame missing 'items'".into(),
                        ))
                    }
                };
                Ok(TransportMsg::Data(decode_pairs(items, &self.plan, "queue")?))
            }
            _ => Err(DataflowError::Enactment("queue frame missing 'kind'".into())),
        }
    }
}

/// Hands every instance a broker client pointed at its own work queue.
struct BrokerConnector<'b> {
    broker: &'b Broker,
    timeout: Duration,
    retry_on_timeout: bool,
    cancel: CancelToken,
    plan: Option<ConcretePlan>,
}

impl Connector for BrokerConnector<'_> {
    type Transport = RedisTransport;

    fn connect(&mut self, _graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError> {
        // Queues materialize lazily on first push; nothing to pre-create.
        self.plan = Some(plan.clone());
        Ok(())
    }

    fn endpoint(&mut self, inst: InstanceId) -> Result<RedisTransport, DataflowError> {
        Ok(RedisTransport {
            client: self.broker.client(),
            my_queue: queue_key(inst),
            plan: self.plan.clone().expect("connect ran first"),
            timeout: self.timeout,
            retry_on_timeout: self.retry_on_timeout,
            cancel: self.cancel.clone(),
        })
    }
}

impl Mapping for RedisMapping {
    fn kind(&self) -> MappingKind {
        MappingKind::Redis
    }

    fn execute_observed(
        &self,
        graph: &WorkflowGraph,
        options: &RunOptions,
        observer: Option<std::sync::Arc<dyn super::RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        let owned_broker;
        let broker = match &self.broker {
            Some(b) => b,
            None => {
                owned_broker = Broker::new();
                &owned_broker
            }
        };
        Runtime::new(graph, options).threaded_observed(
            BrokerConnector {
                broker,
                timeout: options.queue_timeout,
                // An unbounded source may legitimately pause longer than
                // any safety timeout (its pace is caller-chosen), so
                // empty-queue pops retry until data or EOS arrives.
                retry_on_timeout: options.is_unbounded(),
                cancel: options.cancel.clone(),
                plan: None,
            },
            observer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SimpleMapping;
    use crate::pe::{iterative_fn, producer_fn};
    use laminar_json::Value;

    #[test]
    fn matches_simple_as_multiset() {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Neg", |v| v.as_i64().map(|n| Value::Int(-n))));
        g.connect(a, "output", b, "input").unwrap();
        let simple = SimpleMapping.execute(&g, &RunOptions::iterations(40)).unwrap();
        let redis =
            RedisMapping::default().execute(&g, &RunOptions::iterations(40).with_processes(6)).unwrap();
        let mut s: Vec<i64> =
            simple.port_values("Neg", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        let mut r: Vec<i64> =
            redis.port_values("Neg", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        s.sort();
        r.sort();
        assert_eq!(s, r);
    }

    #[test]
    fn unbounded_run_survives_queue_pops_slower_than_the_safety_timeout() {
        // A paced unbounded source whose inter-message gap exceeds the
        // queue safety timeout: relays must retry the empty pop (no
        // invocation bound means no starvation deadline), not fail the
        // run — it ends via the token, as Cancelled.
        use crate::mapping::{CancelToken, Mapping, RunEvent, RunObserver};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Count(AtomicUsize);
        impl RunObserver for Count {
            fn on_event(&self, _seq: u64, event: &RunEvent) {
                if matches!(event, RunEvent::Output { .. }) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
        }

        let token = CancelToken::new();
        let outputs = Arc::new(Count(AtomicUsize::new(0)));
        let handle = {
            let token = token.clone();
            let observer = Arc::clone(&outputs);
            std::thread::spawn(move || {
                let mut g = WorkflowGraph::new("slow");
                let a = g.add(producer_fn("Nums", Value::Int));
                let b = g.add(iterative_fn("Relay", Some));
                g.connect(a, "output", b, "input").unwrap();
                let mut opts = RunOptions::unbounded(Duration::from_millis(60), token).with_processes(3);
                opts.queue_timeout = Duration::from_millis(10); // << pace
                RedisMapping::default().execute_observed(&g, &opts, Some(observer as Arc<dyn RunObserver>))
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while outputs.0.load(Ordering::SeqCst) < 3 {
            assert!(std::time::Instant::now() < deadline, "paced unbounded Redis run starved");
            std::thread::sleep(Duration::from_millis(2));
        }
        token.cancel();
        let result = handle.join().unwrap();
        assert_eq!(result.unwrap_err(), DataflowError::Cancelled, "cancel, not queue starvation");
    }

    #[test]
    fn external_broker_observes_traffic() {
        let broker = Broker::new();
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Id", Some));
        g.connect(a, "output", b, "input").unwrap();
        let client = broker.client();
        let mapping = RedisMapping::with_broker(broker);
        let r = mapping.execute(&g, &RunOptions::iterations(10).with_processes(3)).unwrap();
        assert_eq!(r.port_values("Id", "output").len(), 10);
        // After a clean run, all queues have been drained.
        assert!(client.keys_with_prefix("laminar:q:").is_empty());
    }

    #[test]
    fn groupby_stable_under_queue_routing() {
        let src = r#"
            pe Words : producer { output output; process { emit([["x","y"][iteration % 2], 1]); } }
            pe Count : generic {
                input input groupby 0;
                output output;
                init { state.n = {}; }
                process {
                    let w = input[0];
                    state.n[w] = get(state.n, w, 0) + 1;
                    emit([w, state.n[w]]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let a = g.add_script_pe(src, "Words").unwrap();
        let b = g.add_script_pe(src, "Count").unwrap();
        g.connect(a, "output", b, "input").unwrap();
        let r = RedisMapping::default().execute(&g, &RunOptions::iterations(20).with_processes(5)).unwrap();
        let mut best: std::collections::BTreeMap<String, i64> = Default::default();
        for v in r.port_values("Count", "output") {
            let e = best.entry(v[0].as_str().unwrap().to_string()).or_insert(0);
            *e = (*e).max(v[1].as_i64().unwrap());
        }
        assert_eq!(best.get("x"), Some(&10));
        assert_eq!(best.get("y"), Some(&10));
    }

    #[test]
    fn corrupt_queue_frames_error_instead_of_misrouting() {
        // Pre-seed the downstream work queues with two kinds of corruption:
        // a legacy per-datum frame (no 'items' list) and raw garbage bytes.
        // Both must surface as DataflowError — never be silently defaulted
        // onto the 'input' port.
        let broker = Broker::new();
        let client = broker.client();
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Id", Some));
        g.connect(a, "output", b, "input").unwrap();
        let legacy = pickle::dumps(&jobj! { "kind" => "data", "port" => "input", "value" => 1 });
        client.rpush("laminar:q:1:0", legacy).unwrap();
        client.rpush("laminar:q:1:1", b"not a pickle".to_vec()).unwrap();
        let mapping = RedisMapping::with_broker(broker);
        let err = mapping.execute(&g, &RunOptions::iterations(5).with_processes(3)).unwrap_err();
        match err {
            DataflowError::Enactment(m) => {
                assert!(m.contains("corrupt") || m.contains("frame"), "unexpected message: {m}")
            }
            other => panic!("expected an enactment error, got {other:?}"),
        }
    }

    #[test]
    fn starved_queue_times_out() {
        // A consumer whose producer never produces: zero iterations means
        // sources immediately EOS, so this must terminate cleanly (not
        // hang), proving the EOS protocol works through the broker.
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Id", Some));
        g.connect(a, "output", b, "input").unwrap();
        let r = RedisMapping::default().execute(&g, &RunOptions::iterations(0).with_processes(3)).unwrap();
        assert_eq!(r.total_outputs(), 0);
    }
}
