//! The Simple mapping: sequential in-process enactment, one instance per PE.

use super::runtime::Runtime;
use super::{Mapping, MappingKind, RunOptions, RunResult};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;

/// Sequential enactment. Deterministic: producers run iteration by
/// iteration and data flows breadth-first through the runtime's in-process
/// FIFO (see [`Runtime::sequential`]).
pub struct SimpleMapping;

impl Mapping for SimpleMapping {
    fn kind(&self) -> MappingKind {
        MappingKind::Simple
    }

    fn execute_observed(
        &self,
        graph: &WorkflowGraph,
        options: &RunOptions,
        observer: Option<std::sync::Arc<dyn super::RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        Runtime::new(graph, options).sequential_observed(observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{consumer_fn, iterative_fn, producer_fn};
    use laminar_json::Value;

    #[test]
    fn pipeline_end_to_end() {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Square", |v| v.as_i64().map(|n| Value::Int(n * n))));
        g.connect(a, "output", b, "input").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(5)).unwrap();
        let squares: Vec<i64> =
            r.port_values("Square", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        assert_eq!(r.stats.processed["Nums"], 5);
        assert_eq!(r.stats.processed["Square"], 5);
        assert_eq!(r.stats.instances["Square"], 1);
    }

    #[test]
    fn explicit_data_drive() {
        let src = r#"
            pe Reader : producer { output output; process { emit(input * 10); } }
        "#;
        let mut g = WorkflowGraph::new("d");
        g.add_script_pe(src, "Reader").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::data(vec![Value::Int(1), Value::Int(2)])).unwrap();
        let out: Vec<i64> = r.port_values("Reader", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn is_prime_showcase_deterministic_order() {
        // The paper's Listing 3 workflow under the Simple mapping: filters
        // 1..=20 down to the primes, in order (sequential is deterministic).
        let src = r#"
            pe Seq : producer { output output; process { emit(iteration + 1); } }
            pe IsPrime : iterative {
                input num; output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                    if prime { emit(num); }
                }
            }
            pe PrintPrime : consumer {
                input num;
                process { print("the num", num, "is prime"); }
            }
        "#;
        let mut g = WorkflowGraph::new("isprime");
        let s = g.add_script_pe(src, "Seq").unwrap();
        let p = g.add_script_pe(src, "IsPrime").unwrap();
        let c = g.add_script_pe(src, "PrintPrime").unwrap();
        g.connect(s, "output", p, "num").unwrap();
        g.connect(p, "output", c, "num").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(20)).unwrap();
        assert_eq!(
            r.printed,
            vec![
                "the num 2 is prime",
                "the num 3 is prime",
                "the num 5 is prime",
                "the num 7 is prime",
                "the num 11 is prime",
                "the num 13 is prime",
                "the num 17 is prime",
                "the num 19 is prime",
            ]
        );
    }

    #[test]
    fn multiple_sources() {
        let mut g = WorkflowGraph::new("two");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(producer_fn("B", |i| Value::Int(i + 100)));
        let m = g.add(iterative_fn("Merge", Some));
        g.connect(a, "output", m, "input").unwrap();
        g.connect(b, "output", m, "input").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(2)).unwrap();
        let mut out: Vec<i64> =
            r.port_values("Merge", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        out.sort();
        assert_eq!(out, vec![0, 1, 100, 101]);
        assert_eq!(r.stats.processed["Merge"], 4);
    }

    #[test]
    fn stateful_wordcount_groupby_single_instance() {
        let src = r#"
            pe Words : producer { output output; process { emit([get(["a","b","a","a"], iteration), 1]); } }
            pe Count : generic {
                input input groupby 0;
                output output;
                init { state.count = {}; }
                process {
                    let word = input[0];
                    state.count[word] = get(state.count, word, 0) + input[1];
                    emit([word, state.count[word]]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let w = g.add_script_pe(src, "Words").unwrap();
        let c = g.add_script_pe(src, "Count").unwrap();
        g.connect(w, "output", c, "input").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(4)).unwrap();
        let final_counts = r.port_values("Count", "output");
        assert_eq!(final_counts.last().unwrap(), &laminar_json::jarr!["a", 3]);
    }

    #[test]
    fn pe_runtime_error_propagates() {
        let src = r#"pe Bad : producer { output output; process { emit(1 / 0); } }"#;
        let mut g = WorkflowGraph::new("bad");
        g.add_script_pe(src, "Bad").unwrap();
        let err = SimpleMapping.execute(&g, &RunOptions::iterations(1)).unwrap_err();
        assert!(matches!(err, DataflowError::PeFailed { pe, .. } if pe == "Bad"));
    }

    #[test]
    fn consumer_only_graph_invalid() {
        let mut g = WorkflowGraph::new("c");
        g.add(consumer_fn("C", |_, _| {}));
        assert!(SimpleMapping.execute(&g, &RunOptions::iterations(1)).is_err());
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let mut g = WorkflowGraph::new("z");
        g.add(producer_fn("A", Value::Int));
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(0)).unwrap();
        assert_eq!(r.total_outputs(), 0);
    }
}
