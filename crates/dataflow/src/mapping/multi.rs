//! The Multi mapping: one thread per PE instance, `std::sync::mpsc`
//! channels as the transport (the paper's multiprocessing back-end).

use super::runtime::{Connector, Runtime};
use super::worker::{drain_batch_groups, RoutedDatum, Transport, TransportMsg};
use super::{Mapping, MappingKind, RunOptions, RunResult};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use crate::ports::PortId;
use laminar_json::SharedValue;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Shared-memory parallel enactment.
pub struct MultiMapping;

enum Msg {
    /// One emission burst for this instance. Payloads are `Arc`-shared:
    /// broadcast fan-out moves refcounts through the channel, never copies.
    Data(Vec<(PortId, SharedValue)>),
    Eos,
}

struct ChannelTransport {
    /// Senders indexed by dense instance id — a per-burst array index, not
    /// a per-datum map lookup.
    senders: Vec<Sender<Msg>>,
    plan: ConcretePlan,
    receiver: Receiver<Msg>,
}

impl ChannelTransport {
    fn sender(&self, dest: InstanceId) -> &Sender<Msg> {
        &self.senders[self.plan.dense(dest)]
    }
}

fn closed() -> DataflowError {
    DataflowError::Enactment("channel closed mid-run (peer worker died)".into())
}

impl Transport for ChannelTransport {
    fn send_batch(&mut self, batch: &mut Vec<RoutedDatum>) -> Result<(), DataflowError> {
        let senders = &self.senders;
        let plan = &self.plan;
        drain_batch_groups(batch, |dest, group| {
            senders[plan.dense(dest)].send(Msg::Data(group)).map_err(|_| closed())
        })
    }

    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError> {
        self.sender(dest).send(Msg::Eos).map_err(|_| closed())
    }

    fn recv(&mut self) -> Result<TransportMsg, DataflowError> {
        match self.receiver.recv() {
            Ok(Msg::Data(items)) => Ok(TransportMsg::Data(items)),
            Ok(Msg::Eos) => Ok(TransportMsg::Eos),
            Err(_) => Err(DataflowError::Enactment("all upstream channels closed without EOS".into())),
        }
    }
}

/// One unbounded channel per instance; every worker holds clones of all
/// senders plus its own receiver.
#[derive(Default)]
struct ChannelConnector {
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Option<Receiver<Msg>>>,
    plan: Option<ConcretePlan>,
}

impl Connector for ChannelConnector {
    type Transport = ChannelTransport;

    fn connect(&mut self, _graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError> {
        // Checkpointed runs reconnect once per round: start from a clean
        // slate so dense indices line up with the fresh channels.
        self.senders.clear();
        self.receivers.clear();
        for _ in 0..plan.total_processes {
            let (tx, rx) = channel();
            self.senders.push(tx);
            self.receivers.push(Some(rx));
        }
        self.plan = Some(plan.clone());
        Ok(())
    }

    fn endpoint(&mut self, inst: InstanceId) -> Result<ChannelTransport, DataflowError> {
        let plan = self.plan.clone().expect("connect ran first");
        let dense = plan.dense(inst);
        Ok(ChannelTransport {
            senders: self.senders.clone(),
            plan,
            receiver: self.receivers[dense].take().expect("endpoint taken once per instance"),
        })
    }

    fn on_workers_started(&mut self) {
        // Drop the main thread's senders so channel closure propagates if a
        // worker dies.
        self.senders.clear();
    }
}

impl Mapping for MultiMapping {
    fn kind(&self) -> MappingKind {
        MappingKind::Multi
    }

    fn execute_observed(
        &self,
        graph: &WorkflowGraph,
        options: &RunOptions,
        observer: Option<std::sync::Arc<dyn super::RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        Runtime::new(graph, options).threaded_observed(ChannelConnector::default(), observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SimpleMapping;
    use crate::pe::{iterative_fn, producer_fn};
    use laminar_json::{jarr, Value};

    fn square_graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Square", |v| v.as_i64().map(|n| Value::Int(n * n))));
        g.connect(a, "output", b, "input").unwrap();
        g
    }

    #[test]
    fn matches_simple_as_multiset() {
        let g = square_graph();
        let opts = RunOptions::iterations(50).with_processes(5);
        let simple = SimpleMapping.execute(&g, &RunOptions::iterations(50)).unwrap();
        let multi = MultiMapping.execute(&g, &opts).unwrap();
        let mut a: Vec<i64> =
            simple.port_values("Square", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        let mut b: Vec<i64> =
            multi.port_values("Square", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "Multi must produce the same multiset as Simple");
        assert!(multi.stats.instances["Square"] >= 2);
    }

    #[test]
    fn groupby_preserves_stateful_counts() {
        // Word counting with 4 counter instances: per-key totals must be
        // exactly right despite parallelism, because group-by pins each key
        // to one instance.
        let src = r#"
            pe Words : producer {
                output output;
                process {
                    let words = ["a", "b", "c", "d", "e", "f"];
                    emit([words[iteration % 6], 1]);
                }
            }
            pe Count : generic {
                input input groupby 0;
                output output;
                init { state.count = {}; }
                process {
                    let word = input[0];
                    state.count[word] = get(state.count, word, 0) + input[1];
                    emit([word, state.count[word]]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let w = g.add_script_pe(src, "Words").unwrap();
        let c = g.add_script_pe(src, "Count").unwrap();
        g.connect(w, "output", c, "input").unwrap();
        let r = MultiMapping.execute(&g, &RunOptions::iterations(60).with_processes(5)).unwrap();
        // Each word appears 10 times; the final count per word must be 10.
        let mut max_per_word: std::collections::BTreeMap<String, i64> = Default::default();
        for v in r.port_values("Count", "output") {
            let word = v[0].as_str().unwrap().to_string();
            let n = v[1].as_i64().unwrap();
            let e = max_per_word.entry(word).or_insert(0);
            *e = (*e).max(n);
        }
        assert_eq!(max_per_word.len(), 6);
        for (w, n) in max_per_word {
            assert_eq!(n, 10, "word {w} counted wrongly");
        }
    }

    #[test]
    fn diamond_topology() {
        // a -> (b, c) -> d : fan-out then fan-in.
        let mut g = WorkflowGraph::new("diamond");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", |v| v.as_i64().map(|n| Value::Int(n * 2))));
        let c = g.add(iterative_fn("C", |v| v.as_i64().map(|n| Value::Int(n * 3))));
        let d = g.add(iterative_fn("D", Some));
        g.connect(a, "output", b, "input").unwrap();
        g.connect(a, "output", c, "input").unwrap();
        g.connect(b, "output", d, "input").unwrap();
        g.connect(c, "output", d, "input").unwrap();
        let r = MultiMapping.execute(&g, &RunOptions::iterations(10).with_processes(8)).unwrap();
        let mut out: Vec<i64> = r.port_values("D", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        out.sort();
        let mut expected: Vec<i64> = (0..10).map(|n| n * 2).chain((0..10).map(|n| n * 3)).collect();
        expected.sort();
        assert_eq!(out, expected);
    }

    #[test]
    fn one_to_all_broadcast() {
        use crate::routing::Grouping;
        let mut g = WorkflowGraph::new("bc");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        g.connect_grouped(a, "output", b, "input", Grouping::OneToAll).unwrap();
        let r = MultiMapping.execute(&g, &RunOptions::iterations(4).with_processes(5)).unwrap();
        let n_instances = r.stats.instances["B"];
        assert!(n_instances >= 2);
        // Every instance sees every datum.
        assert_eq!(r.stats.processed["B"], 4 * n_instances as u64);
    }

    #[test]
    fn worker_error_propagates() {
        let src = r#"
            pe Nums : producer { output output; process { emit(iteration); } }
            pe Bad : iterative { input x; output output; process { emit(x / (x - 2)); } }
        "#;
        let mut g = WorkflowGraph::new("bad");
        let a = g.add_script_pe(src, "Nums").unwrap();
        let b = g.add_script_pe(src, "Bad").unwrap();
        g.connect(a, "output", b, "x").unwrap();
        let err = MultiMapping.execute(&g, &RunOptions::iterations(5).with_processes(3)).unwrap_err();
        match err {
            DataflowError::PeFailed { pe, .. } => assert_eq!(pe, "Bad"),
            DataflowError::Enactment(_) => {} // peer saw the closed channel first
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mid_stream_worker_error_does_not_strand_its_peers() {
        // Regression: a PE that fails while its upstream producer is still
        // mid-stream used to deadlock the enactment — the dead relay
        // dropped its receiver without draining or propagating EOS, the
        // producer hit a closed channel before it could send EOS, and the
        // surviving relay blocked in `recv` forever (its own transport
        // holds a sender to its channel, so it never disconnects). The
        // injected send delay pins the producer mid-stream at the moment
        // `Bad` dies, making the former deadlock deterministic. With the
        // failure wind-down in `run_worker` the run must end promptly, and
        // with the *PE's* error: nobody observes a closed channel.
        use crate::fault::FaultPlan;
        let src = r#"
            pe Nums : producer { output output; process { emit(iteration); } }
            pe Bad : iterative { input x; output output; process { emit(x / (x - 2)); } }
        "#;
        let mut g = WorkflowGraph::new("strand");
        let a = g.add_script_pe(src, "Nums").unwrap();
        let b = g.add_script_pe(src, "Bad").unwrap();
        g.connect(a, "output", b, "x").unwrap();
        let opts = RunOptions::iterations(40).with_processes(3).with_faults(FaultPlan {
            delay_send: Some(std::time::Duration::from_millis(1)),
            ..FaultPlan::none()
        });
        let err = MultiMapping.execute(&g, &opts).unwrap_err();
        match err {
            DataflowError::PeFailed { pe, .. } => assert_eq!(pe, "Bad"),
            other => panic!("expected the PE failure, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_every_datum() {
        let g = square_graph();
        let r = MultiMapping.execute(&g, &RunOptions::iterations(30).with_processes(4)).unwrap();
        assert_eq!(r.stats.processed["Nums"], 30);
        assert_eq!(r.stats.processed["Square"], 30);
        assert_eq!(r.stats.emitted["Square"], 30);
    }

    #[test]
    fn tuple_groupby_test_uses_jarr() {
        // Silence unused-import lint while keeping jarr available for
        // future edits.
        assert_eq!(jarr![1].weight(), 2);
    }
}
