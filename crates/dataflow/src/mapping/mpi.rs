//! The MPI mapping: message-passing enactment over a simulated
//! communicator.
//!
//! Each PE instance is a *rank*. Ranks share nothing; every datum is
//! serialized to a byte buffer (lampickle) and sent as a tagged
//! point-to-point message, exactly the discipline a real
//! `mpi4py`-backed dispel4py enactment follows. The communicator is the
//! substrate substitution for MPI itself (see DESIGN.md).

use super::runtime::{Connector, Runtime};
use super::worker::{drain_batch_groups, RoutedDatum, Transport, TransportMsg};
use super::{Mapping, MappingKind, RunOptions, RunResult};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use crate::ports::PortId;
use laminar_codec::pickle;
use laminar_json::{jarr, Value};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Message tag for data payloads.
pub const TAG_DATA: u32 = 1;
/// Message tag for end-of-stream.
pub const TAG_EOS: u32 = 2;

/// A tagged point-to-point message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag ([`TAG_DATA`] or [`TAG_EOS`]).
    pub tag: u32,
    /// Serialized payload (empty for EOS).
    pub payload: Vec<u8>,
}

/// The simulated communicator: `size` ranks with point-to-point channels.
pub struct Communicator {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
}

impl Communicator {
    /// Create a communicator with `size` ranks.
    pub fn new(size: usize) -> Communicator {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Communicator { senders, receivers }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Take the per-rank endpoint (each rank calls this exactly once).
    pub fn endpoint(&mut self, rank: usize) -> RankEndpoint {
        RankEndpoint {
            rank,
            senders: self.senders.clone(),
            receiver: self.receivers[rank].take().expect("endpoint taken once"),
        }
    }
}

/// One rank's view of the communicator.
pub struct RankEndpoint {
    /// This rank's id.
    pub rank: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
}

impl RankEndpoint {
    /// Send `payload` to `dest` with `tag`.
    pub fn send(&self, dest: usize, tag: u32, payload: Vec<u8>) -> Result<(), DataflowError> {
        self.senders[dest]
            .send(Envelope { src: self.rank, tag, payload })
            .map_err(|_| DataflowError::Enactment(format!("rank {dest} is gone")))
    }

    /// Blocking receive of the next message for this rank.
    pub fn recv(&self) -> Result<Envelope, DataflowError> {
        self.receiver.recv().map_err(|_| DataflowError::Enactment("communicator closed without EOS".into()))
    }
}

struct MpiTransport {
    endpoint: RankEndpoint,
    /// Rank of an instance is its dense plan id: an array-offset
    /// computation, not a map lookup.
    plan: ConcretePlan,
}

/// Serialize one destination's burst as a list of `[port_id, value]`
/// pairs. Port ids are the plan's interned [`PortId`]s — both ends hold the
/// same plan, so a small integer is the whole port encoding. Shared with
/// the Redis mapping's queue frames.
pub(crate) fn encode_pairs(group: Vec<(PortId, laminar_json::SharedValue)>) -> Value {
    Value::Array(group.into_iter().map(|(pid, v)| jarr![pid.0 as i64, Value::unshare(v)]).collect())
}

/// Decode a burst's `[port_id, value]` pairs, validating every port id
/// against the plan's port table. Corrupt frames are enactment errors —
/// data is never silently re-routed to a default port.
pub(crate) fn decode_pairs(
    items: Value,
    plan: &ConcretePlan,
    what: &str,
) -> Result<Vec<(PortId, laminar_json::SharedValue)>, DataflowError> {
    let corrupt = |detail: &str| DataflowError::Enactment(format!("corrupt {what} frame: {detail}"));
    let Value::Array(items) = items else {
        return Err(corrupt("expected a batch list"));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let Value::Array(mut pair) = item else {
            return Err(corrupt("batch item is not a [port, value] pair"));
        };
        if pair.len() != 2 {
            return Err(corrupt("batch item is not a [port, value] pair"));
        }
        let value = pair.pop().expect("len 2");
        let port = match pair.pop().expect("len 1").as_i64().map(u32::try_from) {
            Some(Ok(p)) if plan.ports().contains(PortId(p)) => PortId(p),
            Some(p) => return Err(corrupt(&format!("port id {p:?} not in the plan's port table"))),
            None => return Err(corrupt("missing port id")),
        };
        out.push((port, value.into_shared()));
    }
    Ok(out)
}

impl Transport for MpiTransport {
    fn send_batch(&mut self, batch: &mut Vec<RoutedDatum>) -> Result<(), DataflowError> {
        let endpoint = &self.endpoint;
        let plan = &self.plan;
        drain_batch_groups(batch, |dest, group| {
            // Serialize through the byte boundary — ranks share no memory.
            endpoint.send(plan.dense(dest), TAG_DATA, pickle::dumps(&encode_pairs(group)))
        })
    }

    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError> {
        self.endpoint.send(self.plan.dense(dest), TAG_EOS, Vec::new())
    }

    fn recv(&mut self) -> Result<TransportMsg, DataflowError> {
        let env = self.endpoint.recv()?;
        match env.tag {
            TAG_EOS => Ok(TransportMsg::Eos),
            TAG_DATA => {
                let v = pickle::loads(&env.payload)
                    .map_err(|e| DataflowError::Enactment(format!("corrupt MPI frame: {e}")))?;
                Ok(TransportMsg::Data(decode_pairs(v, &self.plan, "MPI")?))
            }
            t => Err(DataflowError::Enactment(format!("unknown MPI tag {t}"))),
        }
    }
}

/// Assigns each planned instance a rank (its dense plan id) and hands out
/// communicator endpoints.
#[derive(Default)]
struct MpiConnector {
    comm: Option<Communicator>,
    plan: Option<ConcretePlan>,
}

impl Connector for MpiConnector {
    type Transport = MpiTransport;

    fn connect(&mut self, _graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError> {
        self.comm = Some(Communicator::new(plan.total_processes));
        self.plan = Some(plan.clone());
        Ok(())
    }

    fn endpoint(&mut self, inst: InstanceId) -> Result<MpiTransport, DataflowError> {
        let comm = self.comm.as_mut().expect("connect ran first");
        let plan = self.plan.clone().expect("connect ran first");
        Ok(MpiTransport { endpoint: comm.endpoint(plan.dense(inst)), plan })
    }
}

/// Message-passing enactment.
pub struct MpiMapping;

impl Mapping for MpiMapping {
    fn kind(&self) -> MappingKind {
        MappingKind::Mpi
    }

    fn execute_observed(
        &self,
        graph: &WorkflowGraph,
        options: &RunOptions,
        observer: Option<std::sync::Arc<dyn super::RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        Runtime::new(graph, options).threaded_observed(MpiConnector::default(), observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SimpleMapping;
    use crate::pe::{iterative_fn, producer_fn};

    #[test]
    fn communicator_point_to_point() {
        let mut comm = Communicator::new(2);
        assert_eq!(comm.size(), 2);
        let e0 = comm.endpoint(0);
        let e1 = comm.endpoint(1);
        e0.send(1, TAG_DATA, b"hello".to_vec()).unwrap();
        let env = e1.recv().unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.tag, TAG_DATA);
        assert_eq!(env.payload, b"hello");
    }

    #[test]
    fn decode_pairs_rejects_corrupt_ports() {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Inc", Some));
        g.connect(a, "output", b, "input").unwrap();
        let plan = ConcretePlan::sequential(&g).unwrap();
        // Well-formed: a known interned port id.
        let input = plan.ports().id("input").unwrap();
        let ok = decode_pairs(jarr![jarr![input.0 as i64, 7]], &plan, "MPI").unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(*ok[0].1, Value::Int(7));
        // Out-of-table port id, stringly-typed port (the legacy wire
        // format), and a non-list frame are all corruption, not "input".
        assert!(decode_pairs(jarr![jarr![999, 7]], &plan, "MPI").is_err());
        assert!(decode_pairs(jarr![jarr!["input", 7]], &plan, "MPI").is_err());
        assert!(decode_pairs(Value::Int(3), &plan, "MPI").is_err());
        assert!(decode_pairs(jarr![jarr![input.0 as i64]], &plan, "MPI").is_err());
        // Ids that only *truncate* into range (2^32 + id, negatives) are
        // corruption too, not aliases of valid ports.
        assert!(decode_pairs(jarr![jarr![(1i64 << 32) + input.0 as i64, 7]], &plan, "MPI").is_err());
        assert!(decode_pairs(jarr![jarr![-1, 7]], &plan, "MPI").is_err());
    }

    #[test]
    fn matches_simple_as_multiset() {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Inc", |v| v.as_i64().map(|n| Value::Int(n + 1))));
        g.connect(a, "output", b, "input").unwrap();
        let simple = SimpleMapping.execute(&g, &RunOptions::iterations(40)).unwrap();
        let mpi = MpiMapping.execute(&g, &RunOptions::iterations(40).with_processes(6)).unwrap();
        let mut s: Vec<i64> =
            simple.port_values("Inc", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        let mut m: Vec<i64> = mpi.port_values("Inc", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        s.sort();
        m.sort();
        assert_eq!(s, m);
    }

    #[test]
    fn payloads_survive_serialization_boundary() {
        // Nested structures cross the byte boundary intact.
        let src = r#"
            pe Maker : producer {
                output output;
                process { emit({"id": iteration, "tags": ["x", "y"], "f": 0.5}); }
            }
            pe Check : iterative {
                input m; output output;
                process { emit(m["tags"][1]); }
            }
        "#;
        let mut g = WorkflowGraph::new("nested");
        let a = g.add_script_pe(src, "Maker").unwrap();
        let b = g.add_script_pe(src, "Check").unwrap();
        g.connect(a, "output", b, "m").unwrap();
        let r = MpiMapping.execute(&g, &RunOptions::iterations(8).with_processes(4)).unwrap();
        assert_eq!(r.port_values("Check", "output").len(), 8);
        for v in r.port_values("Check", "output") {
            assert_eq!(v.as_str(), Some("y"));
        }
    }

    #[test]
    fn groupby_correct_across_ranks() {
        let src = r#"
            pe Words : producer { output output; process { emit([["k1","k2","k3"][iteration % 3], 1]); } }
            pe Count : generic {
                input input groupby 0;
                output output;
                init { state.n = {}; }
                process {
                    let w = input[0];
                    state.n[w] = get(state.n, w, 0) + 1;
                    emit([w, state.n[w]]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let a = g.add_script_pe(src, "Words").unwrap();
        let b = g.add_script_pe(src, "Count").unwrap();
        g.connect(a, "output", b, "input").unwrap();
        let r = MpiMapping.execute(&g, &RunOptions::iterations(30).with_processes(6)).unwrap();
        let mut best: std::collections::BTreeMap<String, i64> = Default::default();
        for v in r.port_values("Count", "output") {
            let w = v[0].as_str().unwrap().to_string();
            let n = v[1].as_i64().unwrap();
            let e = best.entry(w).or_insert(0);
            *e = (*e).max(n);
        }
        for (w, n) in best {
            assert_eq!(n, 10, "key {w}");
        }
    }
}
