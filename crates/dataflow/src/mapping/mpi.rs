//! The MPI mapping: message-passing enactment over a simulated
//! communicator.
//!
//! Each PE instance is a *rank*. Ranks share nothing; every datum is
//! serialized to a byte buffer (lampickle) and sent as a tagged
//! point-to-point message, exactly the discipline a real
//! `mpi4py`-backed dispel4py enactment follows. The communicator is the
//! substrate substitution for MPI itself (see DESIGN.md).

use super::runtime::{Connector, Runtime};
use super::worker::{Transport, TransportMsg};
use super::{Mapping, MappingKind, RunOptions, RunResult};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use laminar_codec::pickle;
use laminar_json::{jobj, Value};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Message tag for data payloads.
pub const TAG_DATA: u32 = 1;
/// Message tag for end-of-stream.
pub const TAG_EOS: u32 = 2;

/// A tagged point-to-point message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag ([`TAG_DATA`] or [`TAG_EOS`]).
    pub tag: u32,
    /// Serialized payload (empty for EOS).
    pub payload: Vec<u8>,
}

/// The simulated communicator: `size` ranks with point-to-point channels.
pub struct Communicator {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
}

impl Communicator {
    /// Create a communicator with `size` ranks.
    pub fn new(size: usize) -> Communicator {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Communicator { senders, receivers }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Take the per-rank endpoint (each rank calls this exactly once).
    pub fn endpoint(&mut self, rank: usize) -> RankEndpoint {
        RankEndpoint {
            rank,
            senders: self.senders.clone(),
            receiver: self.receivers[rank].take().expect("endpoint taken once"),
        }
    }
}

/// One rank's view of the communicator.
pub struct RankEndpoint {
    /// This rank's id.
    pub rank: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
}

impl RankEndpoint {
    /// Send `payload` to `dest` with `tag`.
    pub fn send(&self, dest: usize, tag: u32, payload: Vec<u8>) -> Result<(), DataflowError> {
        self.senders[dest]
            .send(Envelope { src: self.rank, tag, payload })
            .map_err(|_| DataflowError::Enactment(format!("rank {dest} is gone")))
    }

    /// Blocking receive of the next message for this rank.
    pub fn recv(&self) -> Result<Envelope, DataflowError> {
        self.receiver.recv().map_err(|_| DataflowError::Enactment("communicator closed without EOS".into()))
    }
}

struct MpiTransport {
    endpoint: RankEndpoint,
    /// InstanceId -> rank
    rank_of: BTreeMap<InstanceId, usize>,
}

impl Transport for MpiTransport {
    fn send_data(&mut self, dest: InstanceId, port: &str, value: &Value) -> Result<(), DataflowError> {
        // Serialize through the byte boundary — ranks share no memory.
        let frame = pickle::dumps(&jobj! { "port" => port, "value" => value.clone() });
        self.endpoint.send(self.rank_of[&dest], TAG_DATA, frame)
    }

    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError> {
        self.endpoint.send(self.rank_of[&dest], TAG_EOS, Vec::new())
    }

    fn recv(&mut self) -> Result<TransportMsg, DataflowError> {
        let env = self.endpoint.recv()?;
        match env.tag {
            TAG_EOS => Ok(TransportMsg::Eos),
            TAG_DATA => {
                let v = pickle::loads(&env.payload)
                    .map_err(|e| DataflowError::Enactment(format!("corrupt MPI payload: {e}")))?;
                let port = v["port"].as_str().unwrap_or("input").to_string();
                let value = v.get("value").cloned().unwrap_or(Value::Null);
                Ok(TransportMsg::Data { port, value })
            }
            t => Err(DataflowError::Enactment(format!("unknown MPI tag {t}"))),
        }
    }
}

/// Assigns each planned instance a rank and hands out communicator
/// endpoints.
#[derive(Default)]
struct MpiConnector {
    comm: Option<Communicator>,
    rank_of: BTreeMap<InstanceId, usize>,
}

impl Connector for MpiConnector {
    type Transport = MpiTransport;

    fn connect(&mut self, _graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError> {
        let instances = plan.all_instances();
        self.rank_of = instances.iter().enumerate().map(|(r, i)| (*i, r)).collect();
        self.comm = Some(Communicator::new(instances.len()));
        Ok(())
    }

    fn endpoint(&mut self, inst: InstanceId) -> Result<MpiTransport, DataflowError> {
        let comm = self.comm.as_mut().expect("connect ran first");
        Ok(MpiTransport { endpoint: comm.endpoint(self.rank_of[&inst]), rank_of: self.rank_of.clone() })
    }
}

/// Message-passing enactment.
pub struct MpiMapping;

impl Mapping for MpiMapping {
    fn kind(&self) -> MappingKind {
        MappingKind::Mpi
    }

    fn execute(&self, graph: &WorkflowGraph, options: &RunOptions) -> Result<RunResult, DataflowError> {
        Runtime::new(graph, options).threaded(MpiConnector::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SimpleMapping;
    use crate::pe::{iterative_fn, producer_fn};

    #[test]
    fn communicator_point_to_point() {
        let mut comm = Communicator::new(2);
        assert_eq!(comm.size(), 2);
        let e0 = comm.endpoint(0);
        let e1 = comm.endpoint(1);
        e0.send(1, TAG_DATA, b"hello".to_vec()).unwrap();
        let env = e1.recv().unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.tag, TAG_DATA);
        assert_eq!(env.payload, b"hello");
    }

    #[test]
    fn matches_simple_as_multiset() {
        let mut g = WorkflowGraph::new("p");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Inc", |v| v.as_i64().map(|n| Value::Int(n + 1))));
        g.connect(a, "output", b, "input").unwrap();
        let simple = SimpleMapping.execute(&g, &RunOptions::iterations(40)).unwrap();
        let mpi = MpiMapping.execute(&g, &RunOptions::iterations(40).with_processes(6)).unwrap();
        let mut s: Vec<i64> =
            simple.port_values("Inc", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        let mut m: Vec<i64> = mpi.port_values("Inc", "output").iter().map(|v| v.as_i64().unwrap()).collect();
        s.sort();
        m.sort();
        assert_eq!(s, m);
    }

    #[test]
    fn payloads_survive_serialization_boundary() {
        // Nested structures cross the byte boundary intact.
        let src = r#"
            pe Maker : producer {
                output output;
                process { emit({"id": iteration, "tags": ["x", "y"], "f": 0.5}); }
            }
            pe Check : iterative {
                input m; output output;
                process { emit(m["tags"][1]); }
            }
        "#;
        let mut g = WorkflowGraph::new("nested");
        let a = g.add_script_pe(src, "Maker").unwrap();
        let b = g.add_script_pe(src, "Check").unwrap();
        g.connect(a, "output", b, "m").unwrap();
        let r = MpiMapping.execute(&g, &RunOptions::iterations(8).with_processes(4)).unwrap();
        assert_eq!(r.port_values("Check", "output").len(), 8);
        for v in r.port_values("Check", "output") {
            assert_eq!(v.as_str(), Some("y"));
        }
    }

    #[test]
    fn groupby_correct_across_ranks() {
        let src = r#"
            pe Words : producer { output output; process { emit([["k1","k2","k3"][iteration % 3], 1]); } }
            pe Count : generic {
                input input groupby 0;
                output output;
                init { state.n = {}; }
                process {
                    let w = input[0];
                    state.n[w] = get(state.n, w, 0) + 1;
                    emit([w, state.n[w]]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let a = g.add_script_pe(src, "Words").unwrap();
        let b = g.add_script_pe(src, "Count").unwrap();
        g.connect(a, "output", b, "input").unwrap();
        let r = MpiMapping.execute(&g, &RunOptions::iterations(30).with_processes(6)).unwrap();
        let mut best: std::collections::BTreeMap<String, i64> = Default::default();
        for v in r.port_values("Count", "output") {
            let w = v[0].as_str().unwrap().to_string();
            let n = v[1].as_i64().unwrap();
            let e = best.entry(w).or_insert(0);
            *e = (*e).max(n);
        }
        for (w, n) in best {
            assert_eq!(n, 10, "key {w}");
        }
    }
}
