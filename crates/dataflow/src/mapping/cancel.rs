//! Cooperative cancellation for enactments.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between whoever
//! controls a run (the engine pool's `DELETE /execution/{user}/job/{id}`
//! path, a test harness, a timeout guard) and the enactment runtime
//! executing it. Cancellation is *cooperative*: the runtime checks the
//! token between PE invocations — the sequential drain before each datum,
//! `run_worker` before each source iteration and each delivered datum —
//! so a run stops at a clean invocation boundary, never mid-`process`.
//!
//! The observable contract (see `proptest_cancel.rs`): the events a
//! cancelled deterministic run emitted are exactly a prefix of the event
//! stream the uncancelled run would have produced, so folding them yields
//! the prefix-fold of the batch stream. Streams of cancelled runs are
//! terminated by [`super::events::RunEvent::Cancelled`] instead of
//! `Finished`, which is how consumers distinguish "stopped on request"
//! from "failed".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; once set it
/// never resets (a token is for one run).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Sleep for `dur`, waking early when cancellation is requested.
    /// Sources pacing an unbounded run sleep through this so cancel
    /// latency stays bounded by [`CancelToken::SLEEP_SLICE`], not by the
    /// caller-chosen pace (which may be minutes). Returns `true` when the
    /// wake-up was a cancellation.
    pub fn sleep_cancellable(&self, dur: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + dur;
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            std::thread::sleep((deadline - now).min(Self::SLEEP_SLICE));
        }
    }

    /// Granularity of [`CancelToken::sleep_cancellable`] — the worst-case
    /// extra latency a paced source adds to cancellation.
    pub const SLEEP_SLICE: std::time::Duration = std::time::Duration::from_millis(5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn cancellable_sleep_wakes_early_on_cancel() {
        let token = CancelToken::new();
        // Uncancelled: sleeps the full duration.
        let t0 = std::time::Instant::now();
        assert!(!token.sleep_cancellable(std::time::Duration::from_millis(12)));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(12));
        // Cancelled mid-sleep: wakes within a few slices, not the full hour.
        let remote = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            remote.cancel();
        });
        let t0 = std::time::Instant::now();
        assert!(token.sleep_cancellable(std::time::Duration::from_secs(3600)));
        assert!(t0.elapsed() < std::time::Duration::from_secs(10), "woke early on cancel");
        canceller.join().unwrap();
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        assert!(token.is_cancelled());
    }
}
