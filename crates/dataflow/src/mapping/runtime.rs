//! The shared enactment runtime behind every mapping.
//!
//! # Architecture: one semantics, many transports
//!
//! Enacting a workflow graph is the same job no matter which back-end
//! carries the data:
//!
//! 1. **Plan** — turn the abstract graph into a [`ConcretePlan`]
//!    (instances per PE), instantiate an [`InstanceRunner`] per instance,
//!    and set up the transport substrate.
//! 2. **Enact** — drive source instances through the configured
//!    invocations, stream routed data downstream, propagate end-of-stream
//!    once every upstream instance finishes. Terminal outputs, prints and
//!    counters leave the workers as [`RunEvent`]s the moment they happen
//!    (see [`super::events`]).
//! 3. **Collect** — fold the event stream into one [`RunResult`]
//!    ([`super::events::EventFold`]): the batch result *is* the fold.
//!
//! [`Runtime`] owns all three stages and times each one
//! ([`super::StageTimings`] — the overhead structure the paper's Table 5
//! measures). A mapping contributes *only* the transport:
//!
//! * [`Runtime::sequential`] — the Simple mapping's deterministic
//!   in-process schedule; the "transport" is a FIFO the runtime drains
//!   between producer iterations.
//! * [`Runtime::threaded`] — one thread per instance, connected by a
//!   mapping-supplied [`Connector`].
//!
//! # Adding a fifth back-end
//!
//! Implement [`Connector`] (plus its [`Transport`]) and delegate from a new
//! [`super::Mapping`]:
//!
//! ```ignore
//! struct ZmqConnector { /* sockets, endpoints, ... */ }
//!
//! impl Connector for ZmqConnector {
//!     type Transport = ZmqTransport;
//!     fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan)
//!         -> Result<(), DataflowError> { /* bind one inbox per instance */ }
//!     fn endpoint(&mut self, inst: InstanceId)
//!         -> Result<ZmqTransport, DataflowError> { /* that instance's view */ }
//! }
//!
//! impl Mapping for ZmqMapping {
//!     fn kind(&self) -> MappingKind { /* extend the enum */ }
//!     fn execute_observed(&self, graph: &WorkflowGraph, options: &RunOptions,
//!                         observer: Option<Arc<dyn RunObserver>>)
//!         -> Result<RunResult, DataflowError> {
//!         Runtime::new(graph, options).threaded_observed(ZmqConnector::new(), observer)
//!     }
//! }
//! ```
//!
//! The runtime guarantees the rest: identical routing, grouping, EOS,
//! event-stream and stats semantics as the other back-ends, which is what
//! lets the cross-mapping equivalence suites assert output parity and
//! `fold(events) == batch result`.

use super::events::{EventSink, RunEvent, RunObserver};
use super::worker::{
    emissions_to_events, plan_pes, run_worker, Emissions, InstanceRunner, RoutedDatum, Transport,
};
use super::{RunOptions, RunResult, StageTimings};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use laminar_json::Value;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// A mapping's transport factory: how instances get wired together.
pub trait Connector {
    /// The per-instance transport handle workers communicate through.
    type Transport: Transport + Send;

    /// Set up the shared substrate (channels, rank tables, queues) once the
    /// concrete plan is known. Called exactly once, before any
    /// [`Connector::endpoint`] call.
    fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError>;

    /// Produce the transport endpoint for one instance. Called exactly once
    /// per planned instance, after [`Connector::connect`].
    fn endpoint(&mut self, inst: InstanceId) -> Result<Self::Transport, DataflowError>;

    /// Hook invoked after every worker holds its endpoint; connectors drop
    /// main-thread senders here so channel closure propagates when a worker
    /// dies. Default: nothing.
    fn on_workers_started(&mut self) {}
}

/// The shared execution pipeline. Borrows the graph and options for the
/// duration of one enactment.
pub struct Runtime<'a> {
    graph: &'a WorkflowGraph,
    options: &'a RunOptions,
}

impl<'a> Runtime<'a> {
    /// A runtime for one enactment of `graph` under `options`.
    pub fn new(graph: &'a WorkflowGraph, options: &'a RunOptions) -> Runtime<'a> {
        Runtime { graph, options }
    }

    /// Deterministic single-threaded enactment (the Simple mapping): one
    /// instance per PE, producers run iteration by iteration, and the
    /// in-process FIFO is drained breadth-first between iterations so
    /// memory stays flat (streaming, not batch).
    pub fn sequential(&self) -> Result<RunResult, DataflowError> {
        self.sequential_observed(None)
    }

    /// [`Runtime::sequential`] with a live event stream: every
    /// [`RunEvent`] reaches `observer` the moment it happens, and the
    /// returned result is the fold over that same stream.
    pub fn sequential_observed(
        &self,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::sequential(self.graph)?;
        // Flat runner storage indexed by the plan's dense instance id — the
        // per-datum lookup is an array index, not a `BTreeMap` walk.
        let mut runners: Vec<InstanceRunner> = Vec::with_capacity(plan.total_processes);
        for inst in plan.all_instances() {
            runners.push(InstanceRunner::with_backend(
                self.graph,
                &plan,
                inst,
                self.options.interpret_scripts,
            )?);
        }
        let sources: Vec<usize> =
            runners.iter().enumerate().filter(|(_, r)| r.is_source()).map(|(i, _)| i).collect();
        let sink = EventSink::new(observer);
        // The sequential drain pushes events in execution order, so first-
        // output timing is real even without an observer.
        sink.set_realtime();
        sink.push(RunEvent::PlanReady { pes: plan_pes(self.graph, &plan) });
        for r in &runners {
            sink.push(RunEvent::InstanceStarted { pe: Arc::clone(&r.node_name), instance: r.inst.index });
        }
        let plan_time = t0.elapsed();

        sink.start_enact();
        let enact_t0 = Instant::now();
        let ports = Arc::clone(plan.ports());
        let mut queue: VecDeque<RoutedDatum> = VecDeque::new();
        let mut emissions = Emissions::default();
        let mut scratch: Vec<RunEvent> = Vec::new();
        // Absorb one invocation's emissions: routed data queues for the
        // breadth-first drain, terminal outputs and prints become events.
        let absorb = |runner: &InstanceRunner,
                      emissions: &mut Emissions,
                      queue: &mut VecDeque<RoutedDatum>,
                      scratch: &mut Vec<RunEvent>| {
            queue.extend(emissions.routed.drain(..));
            emissions_to_events(&runner.node_name, runner.inst.index, &ports, emissions, scratch);
            sink.extend(scratch);
        };
        // The drive loop. Cancellation is checked before every PE
        // invocation, so a cancelled run stops at an invocation boundary:
        // the events it emitted are exactly a prefix of the stream the
        // uncancelled (deterministic) run would have produced.
        let cancel = &self.options.cancel;
        let limit = self.options.bounded_invocations();
        let pace = self.options.pace();
        let mut i = 0usize;
        'drive: loop {
            if cancel.is_cancelled() {
                sink.emit_cancelled();
                return Err(DataflowError::Cancelled);
            }
            if limit.is_some_and(|n| i >= n) {
                break;
            }
            for &s in &sources {
                runners[s].run_iteration(self.options.datum_for(i), &mut emissions)?;
                absorb(&runners[s], &mut emissions, &mut queue, &mut scratch);
                while let Some(d) = queue.pop_front() {
                    if cancel.is_cancelled() {
                        sink.emit_cancelled();
                        return Err(DataflowError::Cancelled);
                    }
                    let dense = plan.dense(d.dest);
                    runners[dense].run_datum(d.port, Value::unshare(d.value), &mut emissions)?;
                    absorb(&runners[dense], &mut emissions, &mut queue, &mut scratch);
                }
                if cancel.is_cancelled() {
                    continue 'drive; // re-check at the loop head, which stops the run
                }
            }
            i += 1;
            if !pace.is_zero() {
                // Interruptible: a DELETE mid-pace stops the run within
                // a sleep slice, not after the full (caller-chosen) pace.
                cancel.sleep_cancellable(pace);
            }
        }
        for r in &runners {
            sink.push(RunEvent::InstanceFinished {
                pe: Arc::clone(&r.node_name),
                instance: r.inst.index,
                processed: r.stats.processed,
                emitted: r.stats.emitted,
            });
        }
        let enact_time = enact_t0.elapsed();

        Ok(Self::collect(&sink, t0, plan_time, enact_time, self.compile_time()))
    }

    /// Parallel enactment: distribute `options.processes` across the graph,
    /// run one worker thread per instance, and connect them through
    /// `connector`'s transport.
    pub fn threaded<C: Connector>(&self, connector: C) -> Result<RunResult, DataflowError> {
        self.threaded_observed(connector, None)
    }

    /// [`Runtime::threaded`] with a live event stream: workers flush their
    /// events to `observer` per emission burst, so terminal outputs are
    /// visible while upstream instances are still producing.
    pub fn threaded_observed<C: Connector>(
        &self,
        mut connector: C,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::distribute(self.graph, self.options.processes)?;
        // Build runners up-front so graph errors surface before spawning.
        let mut runners = Vec::with_capacity(plan.total_processes);
        for inst in plan.all_instances() {
            runners.push(InstanceRunner::with_backend(
                self.graph,
                &plan,
                inst,
                self.options.interpret_scripts,
            )?);
        }
        connector.connect(self.graph, &plan)?;
        let mut workers = Vec::with_capacity(runners.len());
        for runner in runners {
            let transport = connector.endpoint(runner.inst)?;
            workers.push((runner, transport));
        }
        let sink = EventSink::new(observer);
        sink.push(RunEvent::PlanReady { pes: plan_pes(self.graph, &plan) });
        let plan_time = t0.elapsed();

        sink.start_enact();
        let enact_t0 = Instant::now();
        let options = self.options;
        let plan_ref = &plan;
        let sink_ref = &sink;
        let buffers = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers.len());
            for (runner, transport) in workers {
                handles.push(scope.spawn(move || run_worker(runner, transport, plan_ref, options, sink_ref)));
            }
            connector.on_workers_started();
            join_workers(handles)
        })?;
        let enact_time = enact_t0.elapsed();

        // Workers wind down cooperatively on cancellation (sources stop
        // producing and propagate EOS, relays drain-and-discard), so the
        // join above is clean — but the run did not complete: seal the
        // stream with the Cancelled marker instead of folding a result.
        if self.options.cancel.is_cancelled() {
            sink.emit_cancelled();
            return Err(DataflowError::Cancelled);
        }

        // Unobserved workers returned their buffered events; fold them in
        // dense-instance (spawn) order so the batch result is
        // deterministic. Observed workers already flushed (empty buffers).
        for mut events in buffers {
            sink.extend(&mut events);
        }
        Ok(Self::collect(&sink, t0, plan_time, enact_time, self.compile_time()))
    }

    /// Total script-compilation time across the graph's factories — paid at
    /// graph construction (amortized by the compile cache), reported with
    /// every run's timings.
    fn compile_time(&self) -> std::time::Duration {
        self.graph.nodes().iter().map(|n| n.compile_time()).sum()
    }

    /// The collect stage: fold the event stream into the [`RunResult`],
    /// stamp the stage timings, and emit the terminal
    /// [`RunEvent::Finished`] to the observer.
    fn collect(
        sink: &EventSink,
        t0: Instant,
        plan_time: std::time::Duration,
        enact_time: std::time::Duration,
        compile_time: std::time::Duration,
    ) -> RunResult {
        let collect_t0 = Instant::now();
        let (fold, first_output) = sink.take_fold();
        let mut result = fold.finish();
        result.stats.first_output = first_output;
        result.stats.timings = StageTimings {
            plan: plan_time,
            enact: enact_time,
            collect: collect_t0.elapsed(),
            compile: compile_time,
        };
        result.stats.elapsed = t0.elapsed();
        sink.emit_finished(&result.stats);
        result
    }
}

/// Join every worker, preferring the first real failure over secondary
/// transport errors, panics, and cancellation bail-outs (a relay that
/// stopped waiting because the token fired must not mask the PE error
/// that actually killed the run).
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<Vec<RunEvent>, DataflowError>>>,
) -> Result<Vec<Vec<RunEvent>>, DataflowError> {
    let mut buffers = Vec::with_capacity(handles.len());
    let mut first_err: Option<DataflowError> = None;
    let note = |e: DataflowError, first_err: &mut Option<DataflowError>| match first_err {
        None => *first_err = Some(e),
        Some(DataflowError::Cancelled) if !matches!(e, DataflowError::Cancelled) => *first_err = Some(e),
        Some(_) => {}
    };
    for h in handles {
        match h.join() {
            Ok(Ok(events)) => buffers.push(events),
            Ok(Err(e)) => note(e, &mut first_err),
            Err(_) => note(DataflowError::Enactment("worker thread panicked".into()), &mut first_err),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(buffers),
    }
}

#[cfg(test)]
mod tests {
    use super::super::events::RecordingObserver;
    use super::super::{
        CancelToken, Mapping, MappingKind, MpiMapping, MultiMapping, RedisMapping, SimpleMapping,
    };
    use super::*;
    use crate::pe::{iterative_fn, producer_fn};
    use laminar_json::Value;
    use parking_lot::Mutex;

    fn square_graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("sq");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Square", |v| v.as_i64().map(|n| Value::Int(n * n))));
        g.connect(a, "output", b, "input").unwrap();
        g
    }

    #[test]
    fn every_mapping_reports_stage_timings() {
        let g = square_graph();
        let opts = RunOptions::iterations(20).with_processes(4);
        for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            let r = kind.build().execute(&g, &opts).unwrap();
            let t = r.stats.timings;
            assert!(
                t.plan + t.enact + t.collect <= r.stats.elapsed,
                "{kind}: stages {t:?} exceed elapsed {:?}",
                r.stats.elapsed
            );
            assert!(t.enact > std::time::Duration::ZERO, "{kind}: enact stage not timed");
        }
    }

    #[test]
    fn sequential_runtime_is_simple_mapping() {
        let g = square_graph();
        let opts = RunOptions::iterations(10);
        let via_runtime = Runtime::new(&g, &opts).sequential().unwrap();
        let via_mapping = SimpleMapping.execute(&g, &opts).unwrap();
        assert_eq!(via_runtime.outputs, via_mapping.outputs);
        assert_eq!(via_runtime.stats.processed, via_mapping.stats.processed);
    }

    /// Records the stream and fires the shared token once `at` events
    /// have been observed.
    struct CancelAt {
        token: CancelToken,
        at: u64,
        events: Mutex<Vec<RunEvent>>,
    }

    impl super::super::RunObserver for CancelAt {
        fn on_event(&self, seq: u64, event: &RunEvent) {
            self.events.lock().push(event.clone());
            if seq + 1 >= self.at {
                self.token.cancel();
            }
        }
    }

    #[test]
    fn sequential_cancel_yields_prefix_of_the_batch_stream() {
        let g = square_graph();
        // Reference: the deterministic batch stream of the full run.
        let recorder = RecordingObserver::new();
        Runtime::new(&g, &RunOptions::iterations(20))
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap();
        let batch: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();

        // Same run, cancelled after 9 events.
        let token = CancelToken::new();
        let observer = Arc::new(CancelAt { token: token.clone(), at: 9, events: Mutex::new(Vec::new()) });
        let opts = RunOptions::iterations(20).with_cancel(token);
        let err = Runtime::new(&g, &opts)
            .sequential_observed(Some(Arc::clone(&observer) as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        assert_eq!(err, DataflowError::Cancelled);

        let got = observer.events.lock().clone();
        assert!(matches!(got.last(), Some(RunEvent::Cancelled)), "stream sealed by Cancelled");
        let prefix = &got[..got.len() - 1];
        assert!(prefix.len() >= 9, "cancellation is cooperative: at least the trigger prefix ran");
        assert!(prefix.len() < batch.len(), "the run really stopped early");
        assert_eq!(prefix, &batch[..prefix.len()], "cancelled stream is an exact batch prefix");
    }

    #[test]
    fn unbounded_threaded_run_ends_only_via_cancel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Count(AtomicUsize);
        impl super::super::RunObserver for Count {
            fn on_event(&self, _seq: u64, event: &RunEvent) {
                if matches!(event, RunEvent::Output { .. }) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let token = CancelToken::new();
        let outputs = Arc::new(Count(AtomicUsize::new(0)));
        let handle = {
            let token = token.clone();
            let outputs = Arc::clone(&outputs);
            std::thread::spawn(move || {
                let g = square_graph();
                let opts =
                    RunOptions::unbounded(std::time::Duration::from_micros(100), token).with_processes(4);
                MultiMapping.execute_observed(&g, &opts, Some(outputs as Arc<dyn super::super::RunObserver>))
            })
        };
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while outputs.0.load(std::sync::atomic::Ordering::SeqCst) < 5 {
            assert!(Instant::now() < deadline, "unbounded source never produced");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        token.cancel();
        let result = handle.join().unwrap();
        assert_eq!(result.unwrap_err(), DataflowError::Cancelled);
        assert!(outputs.0.load(std::sync::atomic::Ordering::SeqCst) >= 5);
    }

    #[test]
    fn unbounded_generator_feeds_sources_until_cancel() {
        // A data-driven producer with no host: the Unbounded generator
        // callback supplies each invocation's datum.
        let src = "pe Relay : producer { output output; process { emit(input * 3); } }";
        let mut g = WorkflowGraph::new("gen");
        g.add_script_pe(src, "Relay").unwrap();
        let token = CancelToken::new();
        let observer = Arc::new(CancelAt { token: token.clone(), at: 8, events: Mutex::new(Vec::new()) });
        let opts = RunOptions::unbounded(std::time::Duration::ZERO, token)
            .with_generator(Arc::new(|i| Value::Int(i as i64)));
        let err = Runtime::new(&g, &opts)
            .sequential_observed(Some(Arc::clone(&observer) as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        assert_eq!(err, DataflowError::Cancelled);
        let outputs: Vec<i64> = observer
            .events
            .lock()
            .iter()
            .filter_map(|e| match e {
                RunEvent::Output { value, .. } => value.as_i64(),
                _ => None,
            })
            .collect();
        assert!(outputs.len() >= 2, "generator drove several invocations: {outputs:?}");
        // The generator's data arrived in order: 0, 3, 6, ...
        for (i, v) in outputs.iter().enumerate() {
            assert_eq!(*v, i as i64 * 3);
        }
    }

    #[test]
    fn threaded_mappings_share_one_runtime_semantics() {
        let g = square_graph();
        let opts = RunOptions::iterations(25).with_processes(5);
        let baseline: Vec<i64> = {
            let mut v: Vec<i64> = SimpleMapping
                .execute(&g, &RunOptions::iterations(25))
                .unwrap()
                .port_values("Square", "output")
                .iter()
                .filter_map(Value::as_i64)
                .collect();
            v.sort();
            v
        };
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            let mut got: Vec<i64> =
                r.port_values("Square", "output").iter().filter_map(Value::as_i64).collect();
            got.sort();
            assert_eq!(got, baseline, "{} diverged from Simple", mapping.kind());
        }
    }
}
