//! The shared enactment runtime behind every mapping.
//!
//! # Architecture: one semantics, many transports
//!
//! Enacting a workflow graph is the same job no matter which back-end
//! carries the data:
//!
//! 1. **Plan** — turn the abstract graph into a [`ConcretePlan`]
//!    (instances per PE), instantiate an [`InstanceRunner`] per instance,
//!    and set up the transport substrate.
//! 2. **Enact** — drive source instances through the configured
//!    invocations, stream routed data downstream, propagate end-of-stream
//!    once every upstream instance finishes.
//! 3. **Collect** — fold per-instance outcomes (terminal outputs, captured
//!    prints, counters) into one [`RunResult`].
//!
//! [`Runtime`] owns all three stages and times each one
//! ([`super::StageTimings`] — the overhead structure the paper's Table 5
//! measures). A mapping contributes *only* the transport:
//!
//! * [`Runtime::sequential`] — the Simple mapping's deterministic
//!   in-process schedule; the "transport" is a FIFO the runtime drains
//!   between producer iterations.
//! * [`Runtime::threaded`] — one thread per instance, connected by a
//!   mapping-supplied [`Connector`].
//!
//! # Adding a fifth back-end
//!
//! Implement [`Connector`] (plus its [`Transport`]) and delegate from a new
//! [`super::Mapping`]:
//!
//! ```ignore
//! struct ZmqConnector { /* sockets, endpoints, ... */ }
//!
//! impl Connector for ZmqConnector {
//!     type Transport = ZmqTransport;
//!     fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan)
//!         -> Result<(), DataflowError> { /* bind one inbox per instance */ }
//!     fn endpoint(&mut self, inst: InstanceId)
//!         -> Result<ZmqTransport, DataflowError> { /* that instance's view */ }
//! }
//!
//! impl Mapping for ZmqMapping {
//!     fn kind(&self) -> MappingKind { /* extend the enum */ }
//!     fn execute(&self, graph: &WorkflowGraph, options: &RunOptions)
//!         -> Result<RunResult, DataflowError> {
//!         Runtime::new(graph, options).threaded(ZmqConnector::new())
//!     }
//! }
//! ```
//!
//! The runtime guarantees the rest: identical routing, grouping, EOS and
//! stats semantics as the other back-ends, which is what lets the
//! cross-mapping equivalence suites assert output parity.

use super::worker::{
    merge_outcomes, merge_stats, plan_counts, run_worker, Emissions, InstanceRunner, RoutedDatum, Transport,
    WorkerOutcome,
};
use super::{RunOptions, RunResult, StageTimings};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use crate::ports::PortId;
use laminar_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// A mapping's transport factory: how instances get wired together.
pub trait Connector {
    /// The per-instance transport handle workers communicate through.
    type Transport: Transport + Send;

    /// Set up the shared substrate (channels, rank tables, queues) once the
    /// concrete plan is known. Called exactly once, before any
    /// [`Connector::endpoint`] call.
    fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError>;

    /// Produce the transport endpoint for one instance. Called exactly once
    /// per planned instance, after [`Connector::connect`].
    fn endpoint(&mut self, inst: InstanceId) -> Result<Self::Transport, DataflowError>;

    /// Hook invoked after every worker holds its endpoint; connectors drop
    /// main-thread senders here so channel closure propagates when a worker
    /// dies. Default: nothing.
    fn on_workers_started(&mut self) {}
}

/// The shared execution pipeline. Borrows the graph and options for the
/// duration of one enactment.
pub struct Runtime<'a> {
    graph: &'a WorkflowGraph,
    options: &'a RunOptions,
}

impl<'a> Runtime<'a> {
    /// A runtime for one enactment of `graph` under `options`.
    pub fn new(graph: &'a WorkflowGraph, options: &'a RunOptions) -> Runtime<'a> {
        Runtime { graph, options }
    }

    /// Deterministic single-threaded enactment (the Simple mapping): one
    /// instance per PE, producers run iteration by iteration, and the
    /// in-process FIFO is drained breadth-first between iterations so
    /// memory stays flat (streaming, not batch).
    pub fn sequential(&self) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::sequential(self.graph)?;
        // Flat runner storage indexed by the plan's dense instance id — the
        // per-datum lookup is an array index, not a `BTreeMap` walk.
        let mut runners: Vec<InstanceRunner> = Vec::with_capacity(plan.total_processes);
        for inst in plan.all_instances() {
            runners.push(InstanceRunner::new(self.graph, &plan, inst)?);
        }
        let sources: Vec<usize> =
            runners.iter().enumerate().filter(|(_, r)| r.is_source()).map(|(i, _)| i).collect();
        let plan_time = t0.elapsed();

        let enact_t0 = Instant::now();
        let mut result = RunResult::default();
        let mut queue: VecDeque<RoutedDatum> = VecDeque::new();
        let mut emissions = Emissions::default();
        // Terminal outputs accumulate per dense runner id as interned port
        // ids; names are resolved once in the collect stage below.
        let mut collected: Vec<Vec<(PortId, Value)>> = (0..runners.len()).map(|_| Vec::new()).collect();
        let absorb = |dense: usize,
                      emissions: &mut Emissions,
                      queue: &mut VecDeque<RoutedDatum>,
                      collected: &mut [Vec<(PortId, Value)>],
                      result: &mut RunResult| {
            queue.extend(emissions.routed.drain(..));
            collected[dense].append(&mut emissions.collected);
            result.printed.append(&mut emissions.printed);
        };
        for i in 0..self.options.invocations() {
            for &s in &sources {
                runners[s].run_iteration(self.options.datum_for(i), &mut emissions)?;
                absorb(s, &mut emissions, &mut queue, &mut collected, &mut result);
                while let Some(d) = queue.pop_front() {
                    let dense = plan.dense(d.dest);
                    runners[dense].run_datum(d.port, Value::unshare(d.value), &mut emissions)?;
                    absorb(dense, &mut emissions, &mut queue, &mut collected, &mut result);
                }
            }
        }
        let enact_time = enact_t0.elapsed();

        let collect_t0 = Instant::now();
        let ports = plan.ports();
        for (runner, outs) in runners.iter().zip(collected) {
            let mut by_port: BTreeMap<PortId, Vec<Value>> = BTreeMap::new();
            for (pid, value) in outs {
                by_port.entry(pid).or_default().push(value);
            }
            for (pid, values) in by_port {
                result
                    .outputs
                    .entry((runner.node_name.clone(), ports.name(pid).to_string()))
                    .or_default()
                    .extend(values);
            }
        }
        let stats_iter = runners.iter().map(|r| (r.node_name.clone(), r.stats));
        result.stats = merge_stats(stats_iter, &plan_counts(self.graph, &plan));
        result.stats.timings =
            StageTimings { plan: plan_time, enact: enact_time, collect: collect_t0.elapsed() };
        result.stats.elapsed = t0.elapsed();
        Ok(result)
    }

    /// Parallel enactment: distribute `options.processes` across the graph,
    /// run one worker thread per instance, and connect them through
    /// `connector`'s transport.
    pub fn threaded<C: Connector>(&self, mut connector: C) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::distribute(self.graph, self.options.processes)?;
        // Build runners up-front so graph errors surface before spawning.
        let mut runners = Vec::with_capacity(plan.total_processes);
        for inst in plan.all_instances() {
            runners.push(InstanceRunner::new(self.graph, &plan, inst)?);
        }
        connector.connect(self.graph, &plan)?;
        let mut workers = Vec::with_capacity(runners.len());
        for runner in runners {
            let transport = connector.endpoint(runner.inst)?;
            workers.push((runner, transport));
        }
        let plan_time = t0.elapsed();

        let enact_t0 = Instant::now();
        let options = self.options;
        let plan_ref = &plan;
        let outcomes = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers.len());
            for (runner, transport) in workers {
                handles.push(scope.spawn(move || run_worker(runner, transport, plan_ref, options)));
            }
            connector.on_workers_started();
            join_workers(handles)
        })?;
        let enact_time = enact_t0.elapsed();

        let collect_t0 = Instant::now();
        let counts = plan_counts(self.graph, &plan);
        let mut result = merge_outcomes(outcomes, &counts, plan.ports());
        result.stats.timings =
            StageTimings { plan: plan_time, enact: enact_time, collect: collect_t0.elapsed() };
        result.stats.elapsed = t0.elapsed();
        Ok(result)
    }
}

/// Join every worker, preferring the first real failure over secondary
/// transport errors and panics.
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<WorkerOutcome, DataflowError>>>,
) -> Result<Vec<WorkerOutcome>, DataflowError> {
    let mut outcomes = Vec::with_capacity(handles.len());
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(o)) => outcomes.push(o),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(DataflowError::Enactment("worker thread panicked".into())))
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(outcomes),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Mapping, MappingKind, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
    use super::*;
    use crate::pe::{iterative_fn, producer_fn};
    use laminar_json::Value;

    fn square_graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("sq");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Square", |v| v.as_i64().map(|n| Value::Int(n * n))));
        g.connect(a, "output", b, "input").unwrap();
        g
    }

    #[test]
    fn every_mapping_reports_stage_timings() {
        let g = square_graph();
        let opts = RunOptions::iterations(20).with_processes(4);
        for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            let r = kind.build().execute(&g, &opts).unwrap();
            let t = r.stats.timings;
            assert!(
                t.plan + t.enact + t.collect <= r.stats.elapsed,
                "{kind}: stages {t:?} exceed elapsed {:?}",
                r.stats.elapsed
            );
            assert!(t.enact > std::time::Duration::ZERO, "{kind}: enact stage not timed");
        }
    }

    #[test]
    fn sequential_runtime_is_simple_mapping() {
        let g = square_graph();
        let opts = RunOptions::iterations(10);
        let via_runtime = Runtime::new(&g, &opts).sequential().unwrap();
        let via_mapping = SimpleMapping.execute(&g, &opts).unwrap();
        assert_eq!(via_runtime.outputs, via_mapping.outputs);
        assert_eq!(via_runtime.stats.processed, via_mapping.stats.processed);
    }

    #[test]
    fn threaded_mappings_share_one_runtime_semantics() {
        let g = square_graph();
        let opts = RunOptions::iterations(25).with_processes(5);
        let baseline: Vec<i64> = {
            let mut v: Vec<i64> = SimpleMapping
                .execute(&g, &RunOptions::iterations(25))
                .unwrap()
                .port_values("Square", "output")
                .iter()
                .filter_map(Value::as_i64)
                .collect();
            v.sort();
            v
        };
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            let mut got: Vec<i64> =
                r.port_values("Square", "output").iter().filter_map(Value::as_i64).collect();
            got.sort();
            assert_eq!(got, baseline, "{} diverged from Simple", mapping.kind());
        }
    }
}
