//! The shared enactment runtime behind every mapping.
//!
//! # Architecture: one semantics, many transports
//!
//! Enacting a workflow graph is the same job no matter which back-end
//! carries the data:
//!
//! 1. **Plan** — turn the abstract graph into a [`ConcretePlan`]
//!    (instances per PE), instantiate an [`InstanceRunner`] per instance,
//!    and set up the transport substrate.
//! 2. **Enact** — drive source instances through the configured
//!    invocations, stream routed data downstream, propagate end-of-stream
//!    once every upstream instance finishes. Terminal outputs, prints and
//!    counters leave the workers as [`RunEvent`]s the moment they happen
//!    (see [`super::events`]).
//! 3. **Collect** — fold the event stream into one [`RunResult`]
//!    ([`super::events::EventFold`]): the batch result *is* the fold.
//!
//! [`Runtime`] owns all three stages and times each one
//! ([`super::StageTimings`] — the overhead structure the paper's Table 5
//! measures). A mapping contributes *only* the transport:
//!
//! * [`Runtime::sequential`] — the Simple mapping's deterministic
//!   in-process schedule; the "transport" is a FIFO the runtime drains
//!   between producer iterations.
//! * [`Runtime::threaded`] — one thread per instance, connected by a
//!   mapping-supplied [`Connector`].
//!
//! # Adding a fifth back-end
//!
//! Implement [`Connector`] (plus its [`Transport`]) and delegate from a new
//! [`super::Mapping`]:
//!
//! ```ignore
//! struct ZmqConnector { /* sockets, endpoints, ... */ }
//!
//! impl Connector for ZmqConnector {
//!     type Transport = ZmqTransport;
//!     fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan)
//!         -> Result<(), DataflowError> { /* bind one inbox per instance */ }
//!     fn endpoint(&mut self, inst: InstanceId)
//!         -> Result<ZmqTransport, DataflowError> { /* that instance's view */ }
//! }
//!
//! impl Mapping for ZmqMapping {
//!     fn kind(&self) -> MappingKind { /* extend the enum */ }
//!     fn execute_observed(&self, graph: &WorkflowGraph, options: &RunOptions,
//!                         observer: Option<Arc<dyn RunObserver>>)
//!         -> Result<RunResult, DataflowError> {
//!         Runtime::new(graph, options).threaded_observed(ZmqConnector::new(), observer)
//!     }
//! }
//! ```
//!
//! The runtime guarantees the rest: identical routing, grouping, EOS,
//! event-stream and stats semantics as the other back-ends, which is what
//! lets the cross-mapping equivalence suites assert output parity and
//! `fold(events) == batch result`.

use super::events::{EventSink, RunEvent, RunObserver};
use super::worker::{
    emissions_to_events, plan_pes, run_worker, Emissions, InstanceRunner, RoutedDatum, SourceRange, Transport,
};
use super::{RunOptions, RunResult, StageTimings};
use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use crate::planner::{ConcretePlan, InstanceId};
use laminar_json::Value;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// A mapping's transport factory: how instances get wired together.
pub trait Connector {
    /// The per-instance transport handle workers communicate through.
    type Transport: Transport + Send;

    /// Set up the shared substrate (channels, rank tables, queues) once the
    /// concrete plan is known. Called once per enactment *round* — plain
    /// runs have exactly one; checkpointed runs reconnect between epochs
    /// (each round drains to EOS, so the previous substrate is empty and
    /// fully consumed when this is called again). Implementations must
    /// rebuild from scratch on every call.
    fn connect(&mut self, graph: &WorkflowGraph, plan: &ConcretePlan) -> Result<(), DataflowError>;

    /// Produce the transport endpoint for one instance. Called exactly once
    /// per planned instance per round, after that round's
    /// [`Connector::connect`].
    fn endpoint(&mut self, inst: InstanceId) -> Result<Self::Transport, DataflowError>;

    /// Hook invoked after every worker holds its endpoint; connectors drop
    /// main-thread senders here so channel closure propagates when a worker
    /// dies. Default: nothing.
    fn on_workers_started(&mut self) {}
}

/// The shared execution pipeline. Borrows the graph and options for the
/// duration of one enactment.
pub struct Runtime<'a> {
    graph: &'a WorkflowGraph,
    options: &'a RunOptions,
}

impl<'a> Runtime<'a> {
    /// A runtime for one enactment of `graph` under `options`.
    pub fn new(graph: &'a WorkflowGraph, options: &'a RunOptions) -> Runtime<'a> {
        Runtime { graph, options }
    }

    /// Deterministic single-threaded enactment (the Simple mapping): one
    /// instance per PE, producers run iteration by iteration, and the
    /// in-process FIFO is drained breadth-first between iterations so
    /// memory stays flat (streaming, not batch).
    pub fn sequential(&self) -> Result<RunResult, DataflowError> {
        self.sequential_observed(None)
    }

    /// [`Runtime::sequential`] with a live event stream: every
    /// [`RunEvent`] reaches `observer` the moment it happens, and the
    /// returned result is the fold over that same stream.
    pub fn sequential_observed(
        &self,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::sequential(self.graph)?;
        let sink = EventSink::new(observer);
        // The sequential drain pushes events in execution order, so first-
        // output timing is real even without an observer.
        sink.set_realtime();
        let (mut epoch, mut snapshots) = self.resume_into(&sink);
        if self.options.resume.is_none() {
            sink.push(RunEvent::PlanReady { pes: plan_pes(self.graph, &plan) });
        }
        // Flat runner storage indexed by the plan's dense instance id — the
        // per-datum lookup is an array index, not a `BTreeMap` walk.
        let mut runners = self.build_runners(&plan, snapshots.as_ref())?;
        let sources: Vec<usize> =
            runners.iter().enumerate().filter(|(_, r)| r.is_source()).map(|(i, _)| i).collect();
        let plan_time = t0.elapsed();

        sink.start_enact();
        let enact_t0 = Instant::now();
        let ports = Arc::clone(plan.ports());
        let mut queue: VecDeque<RoutedDatum> = VecDeque::new();
        let mut emissions = Emissions::default();
        let mut scratch: Vec<RunEvent> = Vec::new();
        let cancel = &self.options.cancel;
        let chunk = self.options.checkpoint_every;
        let limit = self.options.bounded_invocations();
        let pace = self.options.pace();
        // The round loop: with checkpointing off there is exactly one
        // round covering the whole input; otherwise each round drives
        // `chunk` global iterations, drains to quiescence, snapshots, and
        // rebuilds its runners from the snapshot — so the restore path is
        // exercised at every epoch, not only after a crash.
        loop {
            let range = Self::round_range(chunk, limit, epoch);
            for r in &runners {
                sink.push(RunEvent::InstanceStarted { pe: Arc::clone(&r.node_name), instance: r.inst.index });
            }
            // Absorb one invocation's emissions: routed data queues for the
            // breadth-first drain, terminal outputs and prints become events.
            let absorb = |runner: &InstanceRunner,
                          emissions: &mut Emissions,
                          queue: &mut VecDeque<RoutedDatum>,
                          scratch: &mut Vec<RunEvent>| {
                queue.extend(emissions.routed.drain(..));
                emissions_to_events(&runner.node_name, runner.inst.index, &ports, emissions, scratch);
                sink.extend(scratch);
            };
            // The drive loop. Cancellation is checked before every PE
            // invocation, so a cancelled run stops at an invocation
            // boundary: the events it emitted are exactly a prefix of the
            // stream the uncancelled (deterministic) run would have
            // produced.
            let mut i = range.base;
            'drive: loop {
                if cancel.is_cancelled() {
                    sink.emit_cancelled();
                    return Err(DataflowError::Cancelled);
                }
                if range.end.is_some_and(|n| i >= n) {
                    break;
                }
                for &s in &sources {
                    runners[s].run_iteration(self.options.datum_for(i), &mut emissions)?;
                    absorb(&runners[s], &mut emissions, &mut queue, &mut scratch);
                    while let Some(d) = queue.pop_front() {
                        if cancel.is_cancelled() {
                            sink.emit_cancelled();
                            return Err(DataflowError::Cancelled);
                        }
                        let dense = plan.dense(d.dest);
                        runners[dense].run_datum(d.port, Value::unshare(d.value), &mut emissions)?;
                        absorb(&runners[dense], &mut emissions, &mut queue, &mut scratch);
                    }
                    if cancel.is_cancelled() {
                        continue 'drive; // re-check at the loop head, which stops the run
                    }
                }
                i += 1;
                // Backpressure seam: once per source iteration, outside the
                // sink lock, let the observer park this producer until its
                // consumer has capacity again (no-op for plain observers).
                sink.throttle();
                if !pace.is_zero() {
                    // Interruptible: a DELETE mid-pace stops the run within
                    // a sleep slice, not after the full (caller-chosen) pace.
                    cancel.sleep_cancellable(pace);
                }
            }
            // Per-round counters: the event fold sums `instance_done`
            // deltas, so round totals add up to exactly the batch figures.
            for r in &runners {
                sink.push(RunEvent::InstanceFinished {
                    pe: Arc::clone(&r.node_name),
                    instance: r.inst.index,
                    processed: r.stats.processed,
                    emitted: r.stats.emitted,
                });
            }
            match self.seal_round(&sink, &runners, chunk, limit, range, &mut epoch, &mut snapshots)? {
                RoundOutcome::Continue => {
                    runners = self.build_runners(&plan, snapshots.as_ref())?;
                }
                RoundOutcome::Done => break,
            }
        }
        let enact_time = enact_t0.elapsed();

        Ok(Self::collect(&sink, t0, plan_time, enact_time, self.compile_time()))
    }

    /// Parallel enactment: distribute `options.processes` across the graph,
    /// run one worker thread per instance, and connect them through
    /// `connector`'s transport.
    pub fn threaded<C: Connector>(&self, connector: C) -> Result<RunResult, DataflowError> {
        self.threaded_observed(connector, None)
    }

    /// [`Runtime::threaded`] with a live event stream: workers flush their
    /// events to `observer` per emission burst, so terminal outputs are
    /// visible while upstream instances are still producing.
    pub fn threaded_observed<C: Connector>(
        &self,
        mut connector: C,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<RunResult, DataflowError> {
        let t0 = Instant::now();
        let plan = ConcretePlan::distribute(self.graph, self.options.processes)?;
        let sink = EventSink::new(observer);
        let (mut epoch, mut snapshots) = self.resume_into(&sink);
        if self.options.resume.is_none() {
            sink.push(RunEvent::PlanReady { pes: plan_pes(self.graph, &plan) });
        }
        // Build runners up-front so graph errors surface before spawning.
        let mut runners = self.build_runners(&plan, snapshots.as_ref())?;
        let plan_time = t0.elapsed();

        sink.start_enact();
        let enact_t0 = Instant::now();
        let chunk = self.options.checkpoint_every;
        let limit = self.options.bounded_invocations();
        let options = self.options;
        let plan_ref = &plan;
        let sink_ref = &sink;
        // The round loop: each round is a full sub-enactment — connect,
        // spawn, drain to EOS, join — so the post-join point is globally
        // quiescent: no datum is in flight on any transport, making the
        // epoch snapshot consistent without a barrier protocol.
        loop {
            let range = Self::round_range(chunk, limit, epoch);
            connector.connect(self.graph, &plan)?;
            let mut endpoints = Vec::with_capacity(runners.len());
            for runner in &runners {
                endpoints.push(connector.endpoint(runner.inst)?);
            }
            let buffers = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(runners.len());
                for (runner, transport) in runners.iter_mut().zip(endpoints) {
                    handles
                        .push(scope.spawn(move || {
                            run_worker(runner, transport, plan_ref, options, range, sink_ref)
                        }));
                }
                connector.on_workers_started();
                join_workers(handles)
            })?;

            // Workers wind down cooperatively on cancellation (sources stop
            // producing and propagate EOS, relays drain-and-discard), so the
            // join above is clean — but the run did not complete: seal the
            // stream with the Cancelled marker instead of folding a result.
            if self.options.cancel.is_cancelled() {
                sink.emit_cancelled();
                return Err(DataflowError::Cancelled);
            }

            // Unobserved workers returned their buffered events; fold them in
            // dense-instance (spawn) order so the batch result is
            // deterministic. Observed workers already flushed (empty buffers).
            for mut events in buffers {
                sink.extend(&mut events);
            }
            match self.seal_round(&sink, &runners, chunk, limit, range, &mut epoch, &mut snapshots)? {
                RoundOutcome::Continue => {
                    runners = self.build_runners(&plan, snapshots.as_ref())?;
                }
                RoundOutcome::Done => break,
            }
        }
        let enact_time = enact_t0.elapsed();

        Ok(Self::collect(&sink, t0, plan_time, enact_time, self.compile_time()))
    }

    /// Apply a resume point: fold the journaled event prefix into the sink
    /// without re-observing it (consumers already saw those events in the
    /// original run), and hand back the epoch and snapshot set to restart
    /// from. A fresh run starts at epoch 0 with no snapshots.
    fn resume_into(&self, sink: &EventSink) -> (u64, Option<Value>) {
        match &self.options.resume {
            Some(r) => {
                sink.preload(r.events.iter().cloned());
                (r.epoch, Some(r.snapshots.clone()))
            }
            None => (0, None),
        }
    }

    /// Build one runner per planned instance, restoring each from the
    /// dense-indexed `snapshots` array when resuming or starting a
    /// checkpointed round. Restore runs after `setup`, mirroring a process
    /// that re-initialised and then loaded its checkpoint.
    fn build_runners(
        &self,
        plan: &ConcretePlan,
        snapshots: Option<&Value>,
    ) -> Result<Vec<InstanceRunner>, DataflowError> {
        let mut runners = Vec::with_capacity(plan.total_processes);
        for inst in plan.all_instances() {
            let mut r = InstanceRunner::with_backend(self.graph, plan, inst, self.options.interpret_scripts)?;
            if let Some(snap) = snapshots.and_then(|s| s.as_array()).and_then(|a| a.get(runners.len())) {
                r.restore(snap);
            }
            runners.push(r);
        }
        Ok(runners)
    }

    /// The dense snapshot array for the current runner set, in plan order —
    /// the `state` payload of [`RunEvent::Epoch`].
    fn collect_snapshots(runners: &[InstanceRunner]) -> Value {
        Value::Array(runners.iter().map(InstanceRunner::snapshot).collect())
    }

    /// The global source-iteration window for the round following `epoch`
    /// completed epochs. With checkpointing off the single round covers the
    /// whole input.
    fn round_range(chunk: usize, limit: Option<usize>, epoch: u64) -> SourceRange {
        if chunk == 0 {
            return SourceRange { base: 0, end: limit };
        }
        let base = epoch as usize * chunk;
        let end = match limit {
            Some(l) => (base + chunk).min(l),
            None => base + chunk,
        };
        SourceRange { base, end: Some(end) }
    }

    /// Seal one completed round: if it covered a full chunk, advance the
    /// epoch — snapshot every runner at this quiescent point, publish the
    /// [`RunEvent::Epoch`] marker, and apply any injected faults — then
    /// decide whether another round follows. Partial final rounds get no
    /// epoch: their events are only ever replayed, never resumed past.
    #[allow(clippy::too_many_arguments)]
    fn seal_round(
        &self,
        sink: &EventSink,
        runners: &[InstanceRunner],
        chunk: usize,
        limit: Option<usize>,
        range: SourceRange,
        epoch: &mut u64,
        snapshots: &mut Option<Value>,
    ) -> Result<RoundOutcome, DataflowError> {
        let full_chunk = chunk > 0 && range.end == Some(range.base + chunk);
        if !full_chunk {
            return Ok(RoundOutcome::Done);
        }
        *epoch += 1;
        let snaps = Self::collect_snapshots(runners);
        sink.push(RunEvent::Epoch { id: *epoch, state: snaps.clone() });
        *snapshots = Some(snaps);
        let faults = &self.options.faults;
        if faults.should_kill_after(*epoch) {
            // The injected crash: the Epoch marker above already reached the
            // observer (and any journal behind it) — the run dies *after*
            // persisting, exactly like a process killed between epochs.
            return Err(DataflowError::Injected { epoch: *epoch });
        }
        if faults.should_stop_after(*epoch) {
            return Ok(RoundOutcome::Done);
        }
        if limit.is_some_and(|l| *epoch as usize * chunk >= l) {
            return Ok(RoundOutcome::Done);
        }
        Ok(RoundOutcome::Continue)
    }

    /// Total script-compilation time across the graph's factories — paid at
    /// graph construction (amortized by the compile cache), reported with
    /// every run's timings.
    fn compile_time(&self) -> std::time::Duration {
        self.graph.nodes().iter().map(|n| n.compile_time()).sum()
    }

    /// The collect stage: fold the event stream into the [`RunResult`],
    /// stamp the stage timings, and emit the terminal
    /// [`RunEvent::Finished`] to the observer.
    fn collect(
        sink: &EventSink,
        t0: Instant,
        plan_time: std::time::Duration,
        enact_time: std::time::Duration,
        compile_time: std::time::Duration,
    ) -> RunResult {
        let collect_t0 = Instant::now();
        let (fold, first_output) = sink.take_fold();
        let mut result = fold.finish();
        result.stats.first_output = first_output;
        result.stats.timings = StageTimings {
            plan: plan_time,
            enact: enact_time,
            collect: collect_t0.elapsed(),
            compile: compile_time,
        };
        result.stats.elapsed = t0.elapsed();
        sink.emit_finished(&result.stats);
        result
    }
}

/// What follows a sealed round: another round (checkpointing, input left)
/// or the end of enactment.
enum RoundOutcome {
    Continue,
    Done,
}

/// Join every worker, preferring the first real failure over secondary
/// transport errors, panics, and cancellation bail-outs (a relay that
/// stopped waiting because the token fired must not mask the PE error
/// that actually killed the run).
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<Vec<RunEvent>, DataflowError>>>,
) -> Result<Vec<Vec<RunEvent>>, DataflowError> {
    let mut buffers = Vec::with_capacity(handles.len());
    let mut first_err: Option<DataflowError> = None;
    let note = |e: DataflowError, first_err: &mut Option<DataflowError>| match first_err {
        None => *first_err = Some(e),
        Some(DataflowError::Cancelled) if !matches!(e, DataflowError::Cancelled) => *first_err = Some(e),
        Some(_) => {}
    };
    for h in handles {
        match h.join() {
            Ok(Ok(events)) => buffers.push(events),
            Ok(Err(e)) => note(e, &mut first_err),
            Err(_) => note(DataflowError::Enactment("worker thread panicked".into()), &mut first_err),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(buffers),
    }
}

#[cfg(test)]
mod tests {
    use super::super::events::RecordingObserver;
    use super::super::{
        CancelToken, Mapping, MappingKind, MpiMapping, MultiMapping, RedisMapping, SimpleMapping,
    };
    use super::*;
    use crate::pe::{iterative_fn, producer_fn};
    use laminar_json::Value;
    use parking_lot::Mutex;

    fn square_graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("sq");
        let a = g.add(producer_fn("Nums", Value::Int));
        let b = g.add(iterative_fn("Square", |v| v.as_i64().map(|n| Value::Int(n * n))));
        g.connect(a, "output", b, "input").unwrap();
        g
    }

    #[test]
    fn every_mapping_reports_stage_timings() {
        let g = square_graph();
        let opts = RunOptions::iterations(20).with_processes(4);
        for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            let r = kind.build().execute(&g, &opts).unwrap();
            let t = r.stats.timings;
            assert!(
                t.plan + t.enact + t.collect <= r.stats.elapsed,
                "{kind}: stages {t:?} exceed elapsed {:?}",
                r.stats.elapsed
            );
            assert!(t.enact > std::time::Duration::ZERO, "{kind}: enact stage not timed");
        }
    }

    #[test]
    fn sequential_runtime_is_simple_mapping() {
        let g = square_graph();
        let opts = RunOptions::iterations(10);
        let via_runtime = Runtime::new(&g, &opts).sequential().unwrap();
        let via_mapping = SimpleMapping.execute(&g, &opts).unwrap();
        assert_eq!(via_runtime.outputs, via_mapping.outputs);
        assert_eq!(via_runtime.stats.processed, via_mapping.stats.processed);
    }

    /// Records the stream and fires the shared token once `at` events
    /// have been observed.
    struct CancelAt {
        token: CancelToken,
        at: u64,
        events: Mutex<Vec<RunEvent>>,
    }

    impl super::super::RunObserver for CancelAt {
        fn on_event(&self, seq: u64, event: &RunEvent) {
            self.events.lock().push(event.clone());
            if seq + 1 >= self.at {
                self.token.cancel();
            }
        }
    }

    #[test]
    fn sequential_cancel_yields_prefix_of_the_batch_stream() {
        let g = square_graph();
        // Reference: the deterministic batch stream of the full run.
        let recorder = RecordingObserver::new();
        Runtime::new(&g, &RunOptions::iterations(20))
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap();
        let batch: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();

        // Same run, cancelled after 9 events.
        let token = CancelToken::new();
        let observer = Arc::new(CancelAt { token: token.clone(), at: 9, events: Mutex::new(Vec::new()) });
        let opts = RunOptions::iterations(20).with_cancel(token);
        let err = Runtime::new(&g, &opts)
            .sequential_observed(Some(Arc::clone(&observer) as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        assert_eq!(err, DataflowError::Cancelled);

        let got = observer.events.lock().clone();
        assert!(matches!(got.last(), Some(RunEvent::Cancelled)), "stream sealed by Cancelled");
        let prefix = &got[..got.len() - 1];
        assert!(prefix.len() >= 9, "cancellation is cooperative: at least the trigger prefix ran");
        assert!(prefix.len() < batch.len(), "the run really stopped early");
        assert_eq!(prefix, &batch[..prefix.len()], "cancelled stream is an exact batch prefix");
    }

    #[test]
    fn unbounded_threaded_run_ends_only_via_cancel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Count(AtomicUsize);
        impl super::super::RunObserver for Count {
            fn on_event(&self, _seq: u64, event: &RunEvent) {
                if matches!(event, RunEvent::Output { .. }) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let token = CancelToken::new();
        let outputs = Arc::new(Count(AtomicUsize::new(0)));
        let handle = {
            let token = token.clone();
            let outputs = Arc::clone(&outputs);
            std::thread::spawn(move || {
                let g = square_graph();
                let opts =
                    RunOptions::unbounded(std::time::Duration::from_micros(100), token).with_processes(4);
                MultiMapping.execute_observed(&g, &opts, Some(outputs as Arc<dyn super::super::RunObserver>))
            })
        };
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while outputs.0.load(std::sync::atomic::Ordering::SeqCst) < 5 {
            assert!(Instant::now() < deadline, "unbounded source never produced");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        token.cancel();
        let result = handle.join().unwrap();
        assert_eq!(result.unwrap_err(), DataflowError::Cancelled);
        assert!(outputs.0.load(std::sync::atomic::Ordering::SeqCst) >= 5);
    }

    #[test]
    fn unbounded_generator_feeds_sources_until_cancel() {
        // A data-driven producer with no host: the Unbounded generator
        // callback supplies each invocation's datum.
        let src = "pe Relay : producer { output output; process { emit(input * 3); } }";
        let mut g = WorkflowGraph::new("gen");
        g.add_script_pe(src, "Relay").unwrap();
        let token = CancelToken::new();
        let observer = Arc::new(CancelAt { token: token.clone(), at: 8, events: Mutex::new(Vec::new()) });
        let opts = RunOptions::unbounded(std::time::Duration::ZERO, token)
            .with_generator(Arc::new(|i| Value::Int(i as i64)));
        let err = Runtime::new(&g, &opts)
            .sequential_observed(Some(Arc::clone(&observer) as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        assert_eq!(err, DataflowError::Cancelled);
        let outputs: Vec<i64> = observer
            .events
            .lock()
            .iter()
            .filter_map(|e| match e {
                RunEvent::Output { value, .. } => value.as_i64(),
                _ => None,
            })
            .collect();
        assert!(outputs.len() >= 2, "generator drove several invocations: {outputs:?}");
        // The generator's data arrived in order: 0, 3, 6, ...
        for (i, v) in outputs.iter().enumerate() {
            assert_eq!(*v, i as i64 * 3);
        }
    }

    /// A graph whose downstream PE carries all three kinds of resumable
    /// state: `state.*` entries (group-by tallies), a running scalar, and
    /// the PRNG stream — if any of them is lost at an epoch boundary the
    /// outputs diverge from the batch run.
    fn stateful_graph() -> WorkflowGraph {
        let src = r#"
            pe Words : producer {
                output output;
                process {
                    let words = ["a", "b", "c"];
                    emit([words[iteration % 3], iteration]);
                }
            }
            pe Tally : generic {
                input input groupby 0;
                output output;
                init { state.seen = {}; state.noise = 0; }
                process {
                    let w = input[0];
                    state.seen[w] = get(state.seen, w, 0) + 1;
                    state.noise = state.noise + randint(0, 9);
                    emit([w, state.seen[w], state.noise]);
                }
            }
        "#;
        let mut g = WorkflowGraph::new("tally");
        let w = g.add_script_pe(src, "Words").unwrap();
        let t = g.add_script_pe(src, "Tally").unwrap();
        g.connect(w, "output", t, "input").unwrap();
        g
    }

    fn sorted_outputs(r: &super::super::RunResult) -> Vec<String> {
        let mut v: Vec<String> = r
            .outputs
            .iter()
            .flat_map(|((pe, port), vals)| vals.iter().map(move |val| format!("{pe}/{port}:{val:?}")))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn checkpointed_run_matches_batch_on_every_mapping() {
        let g = stateful_graph();
        for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            let opts = RunOptions::iterations(20).with_processes(4);
            let plain = kind.build().execute(&g, &opts).unwrap();
            let opts = RunOptions::iterations(20).with_processes(4).with_checkpoints(6);
            let ck = kind.build().execute(&g, &opts).unwrap();
            // 20 iterations in chunks of 6: epochs after 6, 12, 18, then a
            // partial round [18, 20). Group-by state, the noise accumulator
            // and the PRNG stream all cross three restore boundaries.
            assert_eq!(sorted_outputs(&ck), sorted_outputs(&plain), "{kind}: outputs diverged");
            assert_eq!(ck.stats.processed, plain.stats.processed, "{kind}: processed diverged");
            assert_eq!(ck.stats.emitted, plain.stats.emitted, "{kind}: emitted diverged");
        }
    }

    #[test]
    fn sequential_checkpointed_run_is_byte_identical_to_batch() {
        // The Simple mapping is fully deterministic, so checkpointing must
        // not even reorder outputs.
        let g = stateful_graph();
        let plain = SimpleMapping.execute(&g, &RunOptions::iterations(21)).unwrap();
        let ck = SimpleMapping.execute(&g, &RunOptions::iterations(21).with_checkpoints(7)).unwrap();
        assert_eq!(ck.outputs, plain.outputs);
        assert_eq!(ck.printed, plain.printed);
    }

    #[test]
    fn epoch_markers_land_on_chunk_boundaries_only() {
        let g = stateful_graph();
        let recorder = RecordingObserver::new();
        Runtime::new(&g, &RunOptions::iterations(10).with_checkpoints(4))
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap();
        let epochs: Vec<u64> = recorder
            .take()
            .into_iter()
            .filter_map(|(_, _, e)| match e {
                RunEvent::Epoch { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        // Full chunks end at 4 and 8; the partial tail [8, 10) gets none.
        assert_eq!(epochs, vec![1, 2]);

        // A limit landing exactly on a chunk boundary still gets its epoch.
        let recorder = RecordingObserver::new();
        Runtime::new(&g, &RunOptions::iterations(8).with_checkpoints(4))
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap();
        let epochs: Vec<u64> = recorder
            .take()
            .into_iter()
            .filter_map(|(_, _, e)| match e {
                RunEvent::Epoch { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![1, 2]);
    }

    #[test]
    fn kill_fault_dies_after_publishing_the_epoch() {
        use crate::fault::FaultPlan;
        let g = stateful_graph();
        let recorder = RecordingObserver::new();
        let opts = RunOptions::iterations(20)
            .with_checkpoints(4)
            .with_faults(FaultPlan { kill_at_epoch: Some(2), ..FaultPlan::none() });
        let err = Runtime::new(&g, &opts)
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        assert_eq!(err, DataflowError::Injected { epoch: 2 });
        let events: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();
        // The crash happens *after* the epoch marker reached the observer:
        // a journal behind this observer has the checkpoint on disk.
        assert!(
            matches!(events.last(), Some(RunEvent::Epoch { id: 2, .. })),
            "last event should be epoch 2, got {:?}",
            events.last()
        );
    }

    #[test]
    fn resume_from_a_kill_refolds_to_the_batch_result() {
        use super::super::ResumePoint;
        use crate::fault::FaultPlan;
        let g = stateful_graph();
        let batch = SimpleMapping.execute(&g, &RunOptions::iterations(20)).unwrap();

        // Crash after epoch 2 (8 of 20 iterations done), recording the
        // stream a journal would have persisted.
        let recorder = RecordingObserver::new();
        let opts = RunOptions::iterations(20)
            .with_checkpoints(4)
            .with_faults(FaultPlan { kill_at_epoch: Some(2), ..FaultPlan::none() });
        Runtime::new(&g, &opts)
            .sequential_observed(Some(recorder.clone() as Arc<dyn super::super::RunObserver>))
            .unwrap_err();
        let events: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();
        let snapshots = match events.last() {
            Some(RunEvent::Epoch { id: 2, state }) => state.clone(),
            other => panic!("expected epoch 2 last, got {other:?}"),
        };

        // Resume from the journaled prefix and finish the run.
        let opts = RunOptions::iterations(20).with_checkpoints(4).with_resume(ResumePoint {
            epoch: 2,
            snapshots,
            events,
        });
        let resumed = Runtime::new(&g, &opts).sequential().unwrap();
        assert_eq!(resumed.outputs, batch.outputs, "resume diverged from batch outputs");
        assert_eq!(resumed.printed, batch.printed, "resume diverged from batch prints");
        assert_eq!(resumed.stats.processed, batch.stats.processed);
        assert_eq!(resumed.stats.emitted, batch.stats.emitted);
    }

    #[test]
    fn stop_fault_ends_an_unbounded_run_deterministically() {
        use crate::fault::FaultPlan;
        let g = stateful_graph();
        // Unbounded source, checkpoint every 5, stop after 2 epochs: the
        // run completes *successfully* having done exactly 10 iterations —
        // bit-for-bit the bounded 10-iteration run, which is what lets the
        // chaos suite compare an interrupted+resumed unbounded run against
        // a batch reference.
        let token = CancelToken::new();
        let opts = RunOptions::unbounded(std::time::Duration::ZERO, token)
            .with_checkpoints(5)
            .with_faults(FaultPlan { stop_at_epoch: Some(2), ..FaultPlan::none() });
        let stopped = Runtime::new(&g, &opts).sequential().unwrap();
        let bounded = SimpleMapping.execute(&g, &RunOptions::iterations(10)).unwrap();
        assert_eq!(stopped.outputs, bounded.outputs);
        assert_eq!(stopped.stats.processed, bounded.stats.processed);
    }

    #[test]
    fn threaded_mappings_share_one_runtime_semantics() {
        let g = square_graph();
        let opts = RunOptions::iterations(25).with_processes(5);
        let baseline: Vec<i64> = {
            let mut v: Vec<i64> = SimpleMapping
                .execute(&g, &RunOptions::iterations(25))
                .unwrap()
                .port_values("Square", "output")
                .iter()
                .filter_map(Value::as_i64)
                .collect();
            v.sort();
            v
        };
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            let mut got: Vec<i64> =
                r.port_values("Square", "output").iter().filter_map(Value::as_i64).collect();
            got.sort();
            assert_eq!(got, baseline, "{} diverged from Simple", mapping.kind());
        }
    }

    #[test]
    fn every_mapping_throttles_its_sources_once_per_iteration() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // The backpressure seam: a consumer-side observer must get one
        // `throttle` call per source iteration on every mapping, so a
        // bounded event log can pace the producer instead of losing data.
        struct Pacer(AtomicU64);
        impl super::super::RunObserver for Pacer {
            fn on_event(&self, _seq: u64, _event: &RunEvent) {}
            fn throttle(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let g = square_graph();
        let iterations = 15;
        for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            let pacer = Arc::new(Pacer(AtomicU64::new(0)));
            let opts = RunOptions::iterations(iterations).with_processes(4);
            kind.build()
                .execute_observed(&g, &opts, Some(Arc::clone(&pacer) as Arc<dyn super::super::RunObserver>))
                .unwrap();
            let calls = pacer.0.load(Ordering::SeqCst);
            assert!(
                calls >= iterations as u64,
                "{kind}: {calls} throttle calls for {iterations} source iterations"
            );
        }
    }
}
