//! Enactment back-ends ("mappings" in dispel4py terminology).
//!
//! All mappings execute the same abstract graph with identical semantics;
//! they differ in the transport between PE instances:
//!
//! | Mapping  | Paper equivalent        | Transport                          |
//! |----------|-------------------------|------------------------------------|
//! | [`SimpleMapping`] | Simple (sequential) | in-process FIFO queue        |
//! | [`MultiMapping`]  | Multi(processing)   | threads + `std::sync::mpsc` channels |
//! | [`MpiMapping`]    | MPI                 | rank/tag messages, serialized payloads |
//! | [`RedisMapping`]  | Redis               | broker work queues, serialized payloads |
//!
//! The orchestration they share — planning, source driving, routing, EOS
//! propagation, output/stats collection — lives in [`runtime::Runtime`];
//! each mapping only supplies a [`runtime::Connector`] describing its
//! transport. See the [`runtime`] module docs for how to add a fifth
//! back-end.

pub mod cancel;
pub mod events;
mod mpi;
mod multi;
mod redis;
pub mod runtime;
mod simple;
pub mod worker;

pub use cancel::CancelToken;
pub use events::{fold_events, EventFold, EventSink, RecordingObserver, RunEvent, RunObserver};
pub use mpi::{Communicator, Envelope, MpiMapping, RankEndpoint, TAG_DATA, TAG_EOS};
pub use multi::MultiMapping;
pub use redis::RedisMapping;
pub use runtime::{Connector, Runtime};
pub use simple::SimpleMapping;

use crate::error::DataflowError;
use crate::graph::WorkflowGraph;
use laminar_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Which mapping to use — the client's `process=` parameter accepts these
/// names (paper §3.4.1: SIMPLE, MULTI, MPI, REDIS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Sequential in-process execution.
    Simple,
    /// Shared-memory parallel execution.
    Multi,
    /// Message-passing execution over a simulated communicator.
    Mpi,
    /// Broker-queue execution over laminar-redisim.
    Redis,
}

impl MappingKind {
    /// Parse the client-facing name (case-insensitive).
    pub fn parse(s: &str) -> Option<MappingKind> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SIMPLE" => MappingKind::Simple,
            "MULTI" => MappingKind::Multi,
            "MPI" => MappingKind::Mpi,
            "REDIS" => MappingKind::Redis,
            _ => return None,
        })
    }

    /// The client-facing name.
    pub fn as_str(&self) -> &'static str {
        match self {
            MappingKind::Simple => "SIMPLE",
            MappingKind::Multi => "MULTI",
            MappingKind::Mpi => "MPI",
            MappingKind::Redis => "REDIS",
        }
    }

    /// Instantiate the mapping back-end.
    pub fn build(&self) -> Box<dyn Mapping> {
        match self {
            MappingKind::Simple => Box::new(SimpleMapping),
            MappingKind::Multi => Box::new(MultiMapping),
            MappingKind::Mpi => Box::new(MpiMapping),
            MappingKind::Redis => Box::new(RedisMapping::default()),
        }
    }
}

impl std::fmt::Display for MappingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Generator callback for [`RunInput::Unbounded`] sources: produces the
/// datum for producer invocation `i`. Runs on worker threads, so it must
/// be `Send + Sync`; it never crosses the wire (a remote unbounded run
/// drives its producers by iteration count or host calls instead).
pub type SourceGenerator = Arc<dyn Fn(usize) -> Value + Send + Sync>;

/// What drives the root producers.
#[derive(Clone)]
pub enum RunInput {
    /// Run each producer for `n` iterations (the paper's `input=5`).
    Iterations(i64),
    /// Feed this explicit datum list (the paper's
    /// `input=[{"input": "resources/coordinates.txt"}]` form). Each datum
    /// becomes one producer invocation, bound to `input`.
    Data(Vec<Value>),
    /// Run producers until the run's [`CancelToken`] fires — the
    /// long-running streaming mode. Each source paces itself by sleeping
    /// `pace` between its own iterations; `generator`, when present,
    /// produces the datum for invocation `i` (bound to `input`), otherwise
    /// producers are driven by bare iteration count exactly like
    /// [`RunInput::Iterations`].
    Unbounded {
        /// Optional per-invocation datum source.
        generator: Option<SourceGenerator>,
        /// Sleep between a source instance's iterations (zero = as fast
        /// as the PE runs).
        pace: Duration,
    },
}

impl std::fmt::Debug for RunInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunInput::Iterations(n) => f.debug_tuple("Iterations").field(n).finish(),
            RunInput::Data(d) => f.debug_tuple("Data").field(d).finish(),
            RunInput::Unbounded { generator, pace } => f
                .debug_struct("Unbounded")
                .field("generator", &generator.as_ref().map(|_| "<fn>"))
                .field("pace", pace)
                .finish(),
        }
    }
}

/// Options for one enactment.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Producer drive.
    pub input: RunInput,
    /// Requested process count for parallel mappings (the `args={'num': N}`
    /// parameter). Ignored by Simple.
    pub processes: usize,
    /// Safety timeout for distributed queue pops.
    pub queue_timeout: Duration,
    /// Cooperative stop signal, checked between PE invocations. Defaults
    /// to a fresh token nobody cancels; [`RunInput::Unbounded`] runs end
    /// *only* through it.
    pub cancel: CancelToken,
    /// Force scripted PEs onto the tree-walking interpreter instead of the
    /// compiled bytecode VM. The interpreter is the differential oracle the
    /// VM is tested against; this flag keeps it reachable end-to-end (and
    /// is the escape hatch if a compiled body ever misbehaves).
    pub interpret_scripts: bool,
    /// Checkpoint interval in source iterations. `0` (the default)
    /// disables checkpointing; `n > 0` makes the runtime enact in
    /// *rounds* of `n` iterations, draining to quiescence between rounds
    /// and emitting a [`RunEvent::Epoch`] snapshot of every instance's
    /// durable state at each boundary (see [`runtime`] docs).
    pub checkpoint_every: usize,
    /// Deterministic fault schedule for the chaos suites (empty in
    /// production).
    pub faults: crate::fault::FaultPlan,
    /// Resume from a checkpoint: rebuild instances from `snapshots`, skip
    /// the source iterations the checkpoint covers, and fold the replayed
    /// event prefix into the result. Produced by the engine's journal.
    pub resume: Option<ResumePoint>,
}

/// Where a resumed run picks up: the last complete epoch's snapshot plus
/// the events that preceded it (see [`RunOptions::resume`]).
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// The epoch being resumed from (`iterations_done = epoch *
    /// checkpoint_every`).
    pub epoch: u64,
    /// Per-instance snapshots in dense plan order — the `state` payload
    /// of the epoch's [`RunEvent::Epoch`].
    pub snapshots: Value,
    /// The journaled event prefix up to and including that epoch, folded
    /// into the resumed result via [`events::EventSink::preload`].
    pub events: Vec<RunEvent>,
}

impl Default for RunOptions {
    /// The paper's showcase configuration: drive producers for 5 iterations
    /// (`input=5`, Listing 4) over 5 processes — the Figure 1 deployment,
    /// which [`crate::planner::ConcretePlan::distribute`] spreads as one
    /// producer instance plus two instances for each downstream PE.
    fn default() -> RunOptions {
        RunOptions {
            input: RunInput::Iterations(5),
            processes: 5,
            queue_timeout: Duration::from_secs(10),
            cancel: CancelToken::new(),
            interpret_scripts: false,
            checkpoint_every: 0,
            faults: crate::fault::FaultPlan::default(),
            resume: None,
        }
    }
}

impl RunOptions {
    /// Run producers for `n` iterations with the default process count (5,
    /// matching the paper's showcase configuration).
    pub fn iterations(n: i64) -> RunOptions {
        RunOptions { input: RunInput::Iterations(n), ..RunOptions::default() }
    }

    /// Feed explicit data to the producers.
    pub fn data(values: Vec<Value>) -> RunOptions {
        RunOptions { input: RunInput::Data(values), ..RunOptions::default() }
    }

    /// Run producers until `cancel` fires (see [`RunInput::Unbounded`]),
    /// pacing each source instance by `pace` between iterations.
    pub fn unbounded(pace: Duration, cancel: CancelToken) -> RunOptions {
        RunOptions { input: RunInput::Unbounded { generator: None, pace }, cancel, ..RunOptions::default() }
    }

    /// Set the process count.
    pub fn with_processes(mut self, n: usize) -> RunOptions {
        self.processes = n;
        self
    }

    /// Attach the cancellation token the runtime checks between PE
    /// invocations.
    pub fn with_cancel(mut self, cancel: CancelToken) -> RunOptions {
        self.cancel = cancel;
        self
    }

    /// Run scripted PEs on the tree-walking interpreter instead of the
    /// compiled VM (see [`RunOptions::interpret_scripts`]).
    pub fn with_interpreter(mut self, on: bool) -> RunOptions {
        self.interpret_scripts = on;
        self
    }

    /// Checkpoint every `n` source iterations (`0` disables — the
    /// default). See [`RunOptions::checkpoint_every`].
    pub fn with_checkpoints(mut self, n: usize) -> RunOptions {
        self.checkpoint_every = n;
        self
    }

    /// Attach a deterministic fault schedule (chaos tests).
    pub fn with_faults(mut self, faults: crate::fault::FaultPlan) -> RunOptions {
        self.faults = faults;
        self
    }

    /// Resume from a checkpoint (see [`ResumePoint`]).
    pub fn with_resume(mut self, resume: ResumePoint) -> RunOptions {
        self.resume = Some(resume);
        self
    }

    /// Attach a generator callback to an [`RunInput::Unbounded`] drive
    /// (no-op for bounded inputs).
    pub fn with_generator(mut self, g: SourceGenerator) -> RunOptions {
        if let RunInput::Unbounded { generator, .. } = &mut self.input {
            *generator = Some(g);
        }
        self
    }

    /// Number of producer invocations this input implies
    /// (`usize::MAX` for [`RunInput::Unbounded`] — use
    /// [`RunOptions::bounded_invocations`] in loops).
    pub fn invocations(&self) -> usize {
        self.bounded_invocations().unwrap_or(usize::MAX)
    }

    /// The invocation bound, `None` when the run is unbounded
    /// (run-until-cancelled).
    pub fn bounded_invocations(&self) -> Option<usize> {
        match &self.input {
            RunInput::Iterations(n) => Some((*n).max(0) as usize),
            RunInput::Data(d) => Some(d.len()),
            RunInput::Unbounded { .. } => None,
        }
    }

    /// Whether the run ends only through its [`CancelToken`].
    pub fn is_unbounded(&self) -> bool {
        matches!(self.input, RunInput::Unbounded { .. })
    }

    /// Per-source-instance inter-iteration sleep (zero for bounded runs).
    pub fn pace(&self) -> Duration {
        match &self.input {
            RunInput::Unbounded { pace, .. } => *pace,
            _ => Duration::ZERO,
        }
    }

    /// Datum for iteration `i` (None for pure iteration drive).
    pub fn datum_for(&self, i: usize) -> Option<Value> {
        match &self.input {
            RunInput::Iterations(_) => None,
            RunInput::Data(d) => d.get(i).cloned(),
            RunInput::Unbounded { generator, .. } => generator.as_ref().map(|g| g(i)),
        }
    }
}

/// Wall-clock time spent in each stage of the shared enactment pipeline
/// (the overhead structure the paper's Table 5 measures: what surrounds
/// pure execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Plan construction: concrete plan, PE instantiation, transport setup.
    pub plan: Duration,
    /// Pure enactment: driving sources and streaming data to completion.
    pub enact: Duration,
    /// Result collection: folding worker outcomes into a [`RunResult`].
    pub collect: Duration,
    /// Script-to-bytecode compilation for the graph's scripted PEs. Paid
    /// once when each factory is built (and amortized across runs by the
    /// process-wide compile cache), so it is reported alongside — not
    /// inside — the per-run stages above.
    pub compile: Duration,
}

impl StageTimings {
    /// Time spent outside pure enactment.
    pub fn overhead(&self) -> Duration {
        self.plan + self.collect
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Data processed per PE (by name).
    pub processed: BTreeMap<String, u64>,
    /// Data emitted per PE (by name).
    pub emitted: BTreeMap<String, u64>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Instances used per PE (by name).
    pub instances: BTreeMap<String, usize>,
    /// Per-stage breakdown of `elapsed`.
    pub timings: StageTimings,
    /// Events the enactment's stream carried (excluding the terminal
    /// [`events::RunEvent::Finished`]).
    pub events: u64,
    /// Time from enact start to the first terminal-port output, when the
    /// stream was real-time (sequential runs and observed parallel runs).
    /// `None` when nothing was emitted or the run buffered until join.
    pub first_output: Option<Duration>,
}

/// The outcome of an enactment.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Values emitted on terminal ports, keyed by `(pe_name, port)`.
    pub outputs: BTreeMap<(String, String), Vec<Value>>,
    /// Captured `print` lines from all instances (the engine forwards these
    /// to the client — paper Figure 9).
    pub printed: Vec<String>,
    /// Statistics.
    pub stats: RunStats,
}

impl RunResult {
    /// Values emitted on a terminal port (empty slice if none).
    pub fn port_values(&self, pe_name: &str, port: &str) -> &[Value] {
        self.outputs.get(&(pe_name.to_string(), port.to_string())).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total terminal output count.
    pub fn total_outputs(&self) -> usize {
        self.outputs.values().map(Vec::len).sum()
    }
}

/// An enactment back-end.
pub trait Mapping {
    /// Which kind this is.
    fn kind(&self) -> MappingKind;

    /// Execute the graph to completion, streaming [`RunEvent`]s to
    /// `observer` as they happen. The returned batch result is the fold
    /// over that same stream ([`fold_events`]), so observers and callers
    /// always agree.
    fn execute_observed(
        &self,
        graph: &WorkflowGraph,
        options: &RunOptions,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<RunResult, DataflowError>;

    /// Execute the graph to completion (batch: no observer).
    fn execute(&self, graph: &WorkflowGraph, options: &RunOptions) -> Result<RunResult, DataflowError> {
        self.execute_observed(graph, options, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_kind_parse_round_trip() {
        for k in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            assert_eq!(MappingKind::parse(k.as_str()), Some(k));
            assert_eq!(MappingKind::parse(&k.as_str().to_lowercase()), Some(k));
        }
        assert_eq!(MappingKind::parse("SPARK"), None);
    }

    #[test]
    fn run_options_invocations() {
        assert_eq!(RunOptions::iterations(5).invocations(), 5);
        assert_eq!(RunOptions::iterations(-1).invocations(), 0);
        let d = RunOptions::data(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(d.invocations(), 2);
        assert_eq!(d.datum_for(1), Some(Value::Int(2)));
        assert_eq!(d.datum_for(9), None);
        assert_eq!(RunOptions::iterations(3).datum_for(0), None);
    }

    #[test]
    fn unbounded_options_shape() {
        let token = CancelToken::new();
        let o = RunOptions::unbounded(Duration::from_millis(1), token.clone());
        assert!(o.is_unbounded());
        assert_eq!(o.bounded_invocations(), None);
        assert_eq!(o.invocations(), usize::MAX);
        assert_eq!(o.pace(), Duration::from_millis(1));
        assert_eq!(o.datum_for(3), None, "no generator: iteration-driven");
        let o = o.with_generator(Arc::new(|i| Value::Int(i as i64 * 2)));
        assert_eq!(o.datum_for(3), Some(Value::Int(6)));
        token.cancel();
        assert!(o.cancel.is_cancelled(), "options share the caller's token");
        assert!(format!("{:?}", o.input).contains("Unbounded"));
        // Bounded runs have no pace and ignore with_generator.
        let b = RunOptions::iterations(3).with_generator(Arc::new(|_| Value::Null));
        assert_eq!(b.pace(), Duration::ZERO);
        assert_eq!(b.datum_for(0), None);
        assert!(!b.is_unbounded());
    }

    #[test]
    fn default_matches_paper_showcase() {
        let d = RunOptions::default();
        assert!(matches!(d.input, RunInput::Iterations(5)), "paper Listing 4: input=5");
        assert_eq!(d.processes, 5, "paper Figure 1: five processes");
        assert_eq!(d.invocations(), 5);
        // The named constructors share the same defaults.
        assert_eq!(RunOptions::iterations(9).processes, 5);
        assert_eq!(RunOptions::data(vec![]).queue_timeout, d.queue_timeout);
    }

    #[test]
    fn build_constructs_each_kind() {
        for k in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
            assert_eq!(k.build().kind(), k);
        }
    }
}
