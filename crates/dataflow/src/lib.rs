//! # laminar-dataflow
//!
//! The parallel stream-based dataflow engine underneath Laminar — a Rust
//! reproduction of the dispel4py library the paper builds on (§2.1).
//!
//! ## Concepts (one-to-one with the paper)
//!
//! * **Processing Element ([`Pe`])** — the computational unit. Four
//!   archetypes: producer, iterative, consumer, generic. PEs can be
//!   *native* (Rust closures/structs) or *scripted* ([`ScriptPe`] wrapping
//!   LamScript source — the serverless path).
//! * **Instance** — one runtime copy of a PE. Parallel mappings run several
//!   instances per PE.
//! * **Connection** — a directed edge between an output port and an input
//!   port, carrying a [`Grouping`].
//! * **Grouping** — how data is routed among destination instances:
//!   shuffle (round-robin), group-by (MapReduce-style key routing),
//!   one-to-all (broadcast), all-to-one.
//! * **Abstract workflow ([`WorkflowGraph`])** — what the user describes.
//! * **Concrete workflow ([`planner::ConcretePlan`])** — instances +
//!   routing, built automatically at enactment.
//! * **Mapping** — the enactment backend: [`mapping::SimpleMapping`]
//!   (sequential), [`mapping::MultiMapping`] (threads + channels),
//!   [`mapping::MpiMapping`] (rank/tag message passing over a simulated
//!   communicator), [`mapping::RedisMapping`] (work queues on a
//!   [`laminar_redisim::Broker`]).
//!
//! ## Quick start
//!
//! ```
//! use laminar_dataflow::{WorkflowGraph, ScriptPeFactory, mapping::{Mapping, SimpleMapping}, RunOptions};
//!
//! let src = r#"
//!     pe Producer : producer { output output; process { emit(iteration); } }
//!     pe Double : iterative { input x; output output; process { emit(x * 2); } }
//! "#;
//! let mut graph = WorkflowGraph::new("doubler");
//! let p = graph.add_script_pe(src, "Producer").unwrap();
//! let d = graph.add_script_pe(src, "Double").unwrap();
//! graph.connect(p, "output", d, "x").unwrap();
//!
//! let result = SimpleMapping.execute(&graph, &RunOptions::iterations(5)).unwrap();
//! let doubled: Vec<i64> = result.port_values("Double", "output")
//!     .iter().map(|v| v.as_i64().unwrap()).collect();
//! assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
//! ```

pub mod error;
pub mod fault;
pub mod graph;
pub mod mapping;
pub mod pe;
pub mod planner;
pub mod ports;
pub mod routing;

pub use error::DataflowError;
pub use fault::FaultPlan;
pub use graph::{Connection, NodeId, WorkflowGraph};
pub use mapping::{
    fold_events, CancelToken, EventFold, MappingKind, RecordingObserver, ResumePoint, RunEvent, RunInput,
    RunObserver, RunOptions, RunResult, RunStats, SourceGenerator, StageTimings,
};
pub use pe::{consumer_fn, iterative_fn, producer_fn, NativePe, Pe, PeFactory, PeMeta, ScriptPeFactory};
pub use planner::{ConcretePlan, InstanceId};
pub use ports::{PortId, PortTable};
pub use routing::Grouping;

pub use laminar_script::{Host, NullHost, Sink};
