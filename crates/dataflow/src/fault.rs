//! Deterministic fault injection for the durability test surface.
//!
//! A [`FaultPlan`] describes *when* the runtime should misbehave — kill
//! the run at a given epoch, delay transport sends, stop cleanly after a
//! fixed number of epochs — so the chaos suites can crash a checkpointed
//! enactment at a precise, reproducible point and then prove the refold
//! identity `fold(checkpoint + replayed events) == fold(batch)` on the
//! resumed run.
//!
//! The plan travels on [`crate::RunOptions`] (tests, benches) or via the
//! `LAMINAR_FAULTS` environment variable (engine-pool processes, where
//! the test cannot reach into the forked worker): a comma-separated list
//! of `key=value` pairs, e.g.
//!
//! ```text
//! LAMINAR_FAULTS=kill_at_epoch=3,delay_send_us=200
//! ```
//!
//! Faults are *deterministic seams*, not random chaos: every injected
//! failure is a plain error or sleep at a well-defined point in the
//! run's control flow, so a failing case shrinks and replays exactly.

use std::time::Duration;

/// A deterministic schedule of injected failures for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Abort the enactment with [`crate::DataflowError::Injected`] right
    /// after epoch `n`'s snapshot has been emitted (and, in the engine,
    /// journaled) — simulating an engine crash at the worst moment: the
    /// checkpoint is durable but the run is gone.
    pub kill_at_epoch: Option<u64>,
    /// Finish the run cleanly after epoch `n` instead of running to the
    /// input's end. Turns an unbounded source into a bounded, exactly
    /// reproducible run of `n * checkpoint_every` iterations — the
    /// uninterrupted reference side of the chaos comparisons.
    pub stop_at_epoch: Option<u64>,
    /// Sleep this long before every transport send (parallel mappings),
    /// widening the in-flight windows that epoch quiescence must drain.
    pub delay_send: Option<Duration>,
    /// Journal corruption: after finalizing epoch `n`'s segment, chop
    /// this many bytes off its tail — a torn write the resume path must
    /// degrade around (fall back to epoch `n - 1`), not crash on.
    pub truncate_segment: Option<(u64, u64)>,
}

impl FaultPlan {
    /// A plan with no faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Is every fault unset?
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parse the `LAMINAR_FAULTS` wire syntax. Unknown keys and
    /// malformed numbers are ignored (a fault plan must never take down
    /// a production run that happens to inherit a stale variable).
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',') {
            let Some((key, value)) = pair.split_once('=') else { continue };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "kill_at_epoch" => plan.kill_at_epoch = value.parse().ok(),
                "stop_at_epoch" => plan.stop_at_epoch = value.parse().ok(),
                "delay_send_us" => plan.delay_send = value.parse().ok().map(Duration::from_micros),
                "truncate_segment" => {
                    if let Some((epoch, bytes)) = value.split_once(':') {
                        if let (Ok(e), Ok(b)) = (epoch.parse(), bytes.parse()) {
                            plan.truncate_segment = Some((e, b));
                        }
                    }
                }
                _ => {}
            }
        }
        plan
    }

    /// The wire syntax for [`FaultPlan::parse`] (what the engine pool
    /// exports to its workers via `LAMINAR_FAULTS`).
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_at_epoch {
            parts.push(format!("kill_at_epoch={n}"));
        }
        if let Some(n) = self.stop_at_epoch {
            parts.push(format!("stop_at_epoch={n}"));
        }
        if let Some(d) = self.delay_send {
            parts.push(format!("delay_send_us={}", d.as_micros()));
        }
        if let Some((e, b)) = self.truncate_segment {
            parts.push(format!("truncate_segment={e}:{b}"));
        }
        parts.join(",")
    }

    /// The plan in the process environment (`LAMINAR_FAULTS`), or an
    /// empty plan when unset/empty.
    pub fn from_env() -> FaultPlan {
        match std::env::var("LAMINAR_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec),
            _ => FaultPlan::default(),
        }
    }

    /// Should the run die now, having just sealed `epoch`?
    pub fn should_kill_after(&self, epoch: u64) -> bool {
        self.kill_at_epoch.is_some_and(|n| epoch >= n)
    }

    /// Should the run finish cleanly now, having just sealed `epoch`?
    pub fn should_stop_after(&self, epoch: u64) -> bool {
        self.stop_at_epoch.is_some_and(|n| epoch >= n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_spec() {
        let plan = FaultPlan {
            kill_at_epoch: Some(3),
            stop_at_epoch: Some(7),
            delay_send: Some(Duration::from_micros(250)),
            truncate_segment: Some((2, 9)),
        };
        assert_eq!(FaultPlan::parse(&plan.to_spec()), plan);
    }

    #[test]
    fn parse_ignores_junk() {
        let plan = FaultPlan::parse("bogus=1,kill_at_epoch=abc,stop_at_epoch=2,,=");
        assert_eq!(plan, FaultPlan { stop_at_epoch: Some(2), ..FaultPlan::default() });
        assert!(FaultPlan::parse("").is_empty());
    }

    #[test]
    fn kill_and_stop_trigger_at_or_after_their_epoch() {
        let plan = FaultPlan::parse("kill_at_epoch=2");
        assert!(!plan.should_kill_after(1));
        assert!(plan.should_kill_after(2));
        assert!(plan.should_kill_after(3));
        assert!(!plan.should_stop_after(99));
    }
}
