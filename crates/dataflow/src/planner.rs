//! The planner turns an abstract workflow into a concrete one: how many
//! instances each PE gets and how edges fan out between instance sets
//! (blue graph of paper Figure 1).

use crate::error::DataflowError;
use crate::graph::{NodeId, WorkflowGraph};
use crate::ports::PortTable;
use crate::routing::Grouping;
use std::sync::Arc;

/// One PE instance in the concrete plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId {
    /// Which abstract node.
    pub node: NodeId,
    /// Instance index within the node (0-based).
    pub index: usize,
}

/// A concrete enactment plan.
///
/// Besides the instance counts, the plan owns the enactment-wide lookup
/// structures resolved once so the hot path stays allocation-free: the
/// interned [`PortTable`] and the dense instance numbering (prefix offsets)
/// that lets runtimes and transports index instances with a flat `Vec`
/// instead of a per-datum map lookup.
#[derive(Debug, Clone)]
pub struct ConcretePlan {
    /// Instance count per node, indexed by `NodeId.0`.
    pub instances: Vec<usize>,
    /// Total processes used.
    pub total_processes: usize,
    /// Prefix sums of `instances`: instance `(node, index)` has dense id
    /// `offsets[node] + index`.
    offsets: Vec<usize>,
    /// Interned port names of the whole graph.
    ports: Arc<PortTable>,
}

impl ConcretePlan {
    fn assemble(graph: &WorkflowGraph, instances: Vec<usize>) -> ConcretePlan {
        let mut offsets = Vec::with_capacity(instances.len());
        let mut total = 0;
        for &n in &instances {
            offsets.push(total);
            total += n;
        }
        ConcretePlan { instances, total_processes: total, offsets, ports: Arc::new(graph.port_table()) }
    }

    /// The interned port names of this plan's graph.
    pub fn ports(&self) -> &Arc<PortTable> {
        &self.ports
    }

    /// Dense id of an instance: a contiguous `0..total_processes` numbering
    /// in `all_instances` order. Lets per-instance state live in a flat
    /// `Vec` instead of a `BTreeMap` keyed by [`InstanceId`].
    pub fn dense(&self, inst: InstanceId) -> usize {
        self.offsets[inst.node.0] + inst.index
    }

    /// dispel4py-style distribution of `processes` across the graph:
    /// producers (roots) get one instance each; the remaining processes are
    /// divided evenly among the non-root PEs (each at least one). With
    /// 5 processes over Fig. 1's three PEs this yields 1/2/2, matching the
    /// paper.
    pub fn distribute(graph: &WorkflowGraph, processes: usize) -> Result<ConcretePlan, DataflowError> {
        if processes == 0 {
            return Err(DataflowError::Options("process count must be >= 1".into()));
        }
        graph.validate()?;
        let n = graph.len();
        let roots = graph.roots();
        let mut instances = vec![1usize; n];
        let non_roots: Vec<usize> = (0..n).filter(|i| !roots.contains(&NodeId(*i))).collect();
        if !non_roots.is_empty() {
            let available = processes.saturating_sub(roots.len()).max(non_roots.len());
            let per = available / non_roots.len();
            let mut extra = available % non_roots.len();
            for &i in &non_roots {
                instances[i] = per.max(1);
                if extra > 0 && per >= 1 {
                    instances[i] += 1;
                    extra -= 1;
                }
            }
        }
        Ok(Self::assemble(graph, instances))
    }

    /// A plan with exactly one instance per PE (the Simple mapping).
    pub fn sequential(graph: &WorkflowGraph) -> Result<ConcretePlan, DataflowError> {
        graph.validate()?;
        Ok(Self::assemble(graph, vec![1; graph.len()]))
    }

    /// Instance count for a node.
    pub fn count(&self, node: NodeId) -> usize {
        self.instances[node.0]
    }

    /// Enumerate all instances in (node, index) order.
    pub fn all_instances(&self) -> Vec<InstanceId> {
        let mut out = Vec::with_capacity(self.total_processes);
        for (n, &c) in self.instances.iter().enumerate() {
            for i in 0..c {
                out.push(InstanceId { node: NodeId(n), index: i });
            }
        }
        out
    }

    /// Render the concrete workflow in Graphviz DOT (blue graph of paper
    /// Figure 1): every instance is a node, edges follow the groupings.
    pub fn to_dot(&self, graph: &WorkflowGraph) -> String {
        let mut out = String::from(
            "digraph concrete {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=lightblue];\n",
        );
        for inst in self.all_instances() {
            let name = &graph.nodes()[inst.node.0].meta().name;
            out.push_str(&format!(
                "  n{}_{} [label=\"{}[{}]\"];\n",
                inst.node.0, inst.index, name, inst.index
            ));
        }
        for c in graph.connections() {
            let from_n = self.count(c.from);
            let to_n = self.count(c.to);
            for fi in 0..from_n {
                match c.grouping {
                    // Point-to-point fan-out potential: draw all feasible edges.
                    Grouping::AllToOne => {
                        out.push_str(&format!("  n{}_{} -> n{}_0;\n", c.from.0, fi, c.to.0));
                    }
                    _ => {
                        for ti in 0..to_n {
                            out.push_str(&format!("  n{}_{} -> n{}_{};\n", c.from.0, fi, c.to.0, ti));
                        }
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{consumer_fn, iterative_fn, producer_fn};
    use laminar_json::Value;

    fn fig1_graph() -> WorkflowGraph {
        // The paper's Figure 1 topology: PE1 -> PE2 -> PE3.
        let mut g = WorkflowGraph::new("fig1");
        let p1 = g.add(producer_fn("PE1", Value::Int));
        let p2 = g.add(iterative_fn("PE2", Some));
        let p3 = g.add(consumer_fn("PE3", |_, _| {}));
        g.connect(p1, "output", p2, "input").unwrap();
        g.connect(p2, "output", p3, "input").unwrap();
        g
    }

    #[test]
    fn figure1_distribution() {
        // "five processes (e.g., one PE instance for PE1 and two for PE2 to
        // PE3) using the Multi mapping" — paper Figure 1.
        let g = fig1_graph();
        let plan = ConcretePlan::distribute(&g, 5).unwrap();
        assert_eq!(plan.instances, vec![1, 2, 2]);
        assert_eq!(plan.total_processes, 5);
    }

    #[test]
    fn minimum_one_instance_each() {
        let g = fig1_graph();
        let plan = ConcretePlan::distribute(&g, 1).unwrap();
        assert_eq!(plan.instances, vec![1, 1, 1]);
    }

    #[test]
    fn sequential_plan() {
        let g = fig1_graph();
        let plan = ConcretePlan::sequential(&g).unwrap();
        assert_eq!(plan.instances, vec![1, 1, 1]);
        assert_eq!(plan.all_instances().len(), 3);
    }

    #[test]
    fn zero_processes_rejected() {
        let g = fig1_graph();
        assert!(ConcretePlan::distribute(&g, 0).is_err());
    }

    #[test]
    fn uneven_distribution_spreads_extra() {
        let g = fig1_graph();
        let plan = ConcretePlan::distribute(&g, 6).unwrap();
        assert_eq!(plan.instances[0], 1);
        assert_eq!(plan.instances[1] + plan.instances[2], 5);
        assert!(plan.instances[1] >= 2 && plan.instances[2] >= 2);
    }

    #[test]
    fn dense_ids_are_contiguous_in_instance_order() {
        let g = fig1_graph();
        let plan = ConcretePlan::distribute(&g, 5).unwrap();
        let dense: Vec<usize> = plan.all_instances().iter().map(|&i| plan.dense(i)).collect();
        assert_eq!(dense, (0..plan.total_processes).collect::<Vec<_>>());
    }

    #[test]
    fn plan_interns_graph_ports() {
        let g = fig1_graph();
        let plan = ConcretePlan::sequential(&g).unwrap();
        let ports = plan.ports();
        assert!(ports.id("output").is_some());
        assert!(ports.id("input").is_some());
        assert_eq!(ports.id("nope"), None);
    }

    #[test]
    fn concrete_dot_shows_instances() {
        let g = fig1_graph();
        let plan = ConcretePlan::distribute(&g, 5).unwrap();
        let dot = plan.to_dot(&g);
        assert!(dot.contains("PE2[0]"));
        assert!(dot.contains("PE2[1]"));
        assert!(dot.contains("n0_0 -> n1_0"));
        assert!(dot.contains("n0_0 -> n1_1"));
    }
}
