//! Verifies the interned datapath's headline property: steady-state
//! enactment performs **no per-datum port-name `String` allocations**.
//!
//! Strategy: a counting global allocator measures the bytes allocated by
//! the steady-state portion of a sequential enactment (the difference
//! between a long and a short run of the same graph), for two graphs that
//! are identical except for the *length* of their port names (5 bytes vs
//! 160 bytes). If any code on the datapath still allocated a port name per
//! datum, the long-named graph's steady-state cost would grow by at least
//! the name-length difference for every datum. With interning, the name
//! length can only affect plan/collect-time work, so the per-datum deltas
//! must match to within noise.

use laminar_dataflow::mapping::{Mapping, SimpleMapping};
use laminar_dataflow::pe::{producer_fn, NativePeFactory, PeMeta};
use laminar_dataflow::{RunOptions, WorkflowGraph};
use laminar_json::Value;
use laminar_script::{PeKind, PortDecl};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A → B → C pipeline whose ports are all named `port_name`.
fn pipeline(port_name: &str) -> WorkflowGraph {
    let meta = |name: &str, kind: PeKind, inputs: bool, outputs: bool| PeMeta {
        name: name.to_string(),
        kind,
        inputs: if inputs { vec![PortDecl { name: port_name.to_string(), groupby: None }] } else { vec![] },
        outputs: if outputs { vec![port_name.to_string()] } else { vec![] },
        source: None,
        imports: vec![],
        description: None,
        stateful: false,
    };
    let mut g = WorkflowGraph::new("alloc");
    let a = g.add(producer_fn("A", Value::Int));
    let out_port = port_name.to_string();
    let b_factory = NativePeFactory::new(meta("B", PeKind::Iterative, true, true), move || {
        let port = out_port.clone();
        Box::new(move |input, _it, out| {
            if let Some((_, v)) = input {
                out.emit(&port, v);
            }
            Ok(())
        })
    });
    let b = g.add(b_factory);
    let c_factory = NativePeFactory::new(meta("C", PeKind::Iterative, true, true), || {
        Box::new(|_input, _it, _out| Ok(()))
    });
    let c = g.add(c_factory);
    // producer_fn emits on "output"; B and C listen/speak `port_name`.
    g.connect(a, "output", b, port_name).unwrap();
    g.connect(b, port_name, c, port_name).unwrap();
    g
}

fn bytes_for(graph: &WorkflowGraph, iterations: i64) -> u64 {
    let before = BYTES.load(Ordering::Relaxed);
    SimpleMapping.execute(graph, &RunOptions::iterations(iterations)).unwrap();
    BYTES.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_allocations_are_port_name_independent() {
    let short = pipeline("p");
    let long_name = "p".repeat(160);
    let long = pipeline(&long_name);

    // Warm up (lazy statics, allocator pools).
    bytes_for(&short, 64);
    bytes_for(&long, 64);

    const BASE: i64 = 512;
    const EXTRA: i64 = 2048;
    // Steady-state cost of EXTRA datums = cost(BASE+EXTRA) - cost(BASE);
    // plan/collect work cancels out of the difference.
    let steady_short = bytes_for(&short, BASE + EXTRA) as i64 - bytes_for(&short, BASE) as i64;
    let steady_long = bytes_for(&long, BASE + EXTRA) as i64 - bytes_for(&long, BASE) as i64;

    // One leaked port-name String per datum would cost ≥ 159 bytes × EXTRA
    // ≈ 325 KB here. Allow generous constant noise (buffer doubling
    // raciness etc.) far below that.
    let delta = (steady_long - steady_short).abs();
    assert!(
        delta < 32 * 1024,
        "steady-state allocation depends on port-name length: \
         short={steady_short}B long={steady_long}B delta={delta}B for {EXTRA} datums"
    );
}
