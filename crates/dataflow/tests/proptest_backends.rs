//! Property tests: the bytecode VM and the tree-walking interpreter are
//! observationally equivalent *through the dataflow layer*, under every
//! mapping.
//!
//! `crates/script/tests/proptest_vm.rs` proves backend parity at the
//! script level (lockstep invocations, fuel accounting, error objects).
//! These properties prove the integration: a workflow run with the
//! default compiled backend and the same run with
//! `RunOptions::with_interpreter(true)` must produce identical results
//! under Simple / Multi / MPI / Redis — including stateful group-by
//! PEs, prints, seeded RNG, and scripts that fail mid-run.

use std::sync::Arc;

use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::{RecordingObserver, RunEvent, RunObserver, RunOptions, RunResult, WorkflowGraph};
use proptest::prelude::*;

/// Producer → stateful group-by aggregator → formatter with prints.
/// Exercises state mutation, map/list indexing, string ops, floats,
/// and conditionals — the instruction classes the lowerer treats
/// differently from the tree-walker.
fn workload_source(op: &str, k: i64, nkeys: usize) -> String {
    format!(
        r#"
        pe Feed : producer {{
            output output;
            process {{
                let key = "k" + str(iteration % {nkeys});
                emit([key, iteration {op} {k}]);
            }}
        }}
        pe Agg : generic {{
            input input groupby 0;
            output output;
            init {{ state.totals = {{}}; state.seen = 0; }}
            process {{
                let key = input[0];
                state.totals[key] = get(state.totals, key, 0) + input[1];
                state.seen = state.seen + 1;
                emit([key, state.totals[key], state.seen]);
            }}
        }}
        pe Fmt : iterative {{
            input x;
            output output;
            process {{
                if x[1] % 3 == 0 {{ print("hit", x[0]); }}
                emit(upper(x[0]) + ":" + str(x[1] * 2 + x[2]));
            }}
        }}
        "#
    )
}

fn build_workload(src: &str) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("diff");
    let a = g.add_script_pe(src, "Feed").unwrap();
    let b = g.add_script_pe(src, "Agg").unwrap();
    let c = g.add_script_pe(src, "Fmt").unwrap();
    g.connect(a, "output", b, "input").unwrap();
    g.connect(b, "output", c, "x").unwrap();
    g
}

fn sorted_strings(r: &RunResult, pe: &str) -> Vec<String> {
    let mut out: Vec<String> =
        r.port_values(pe, "output").iter().filter_map(|v| v.as_str().map(str::to_string)).collect();
    out.sort();
    out
}

fn sorted_prints(r: &RunResult) -> Vec<String> {
    let mut p = r.printed.clone();
    p.sort();
    p
}

/// Run checkpointed and collect every epoch marker as `(id, serialized
/// state)` — string comparison makes divergence a *byte* difference, the
/// contract the journal depends on.
fn epoch_states(mapping: &dyn Mapping, g: &WorkflowGraph, opts: &RunOptions) -> Vec<(u64, String)> {
    let recorder = RecordingObserver::new();
    mapping.execute_observed(g, opts, Some(recorder.clone() as Arc<dyn RunObserver>)).unwrap();
    recorder
        .take()
        .into_iter()
        .filter_map(|(_, _, e)| match e {
            RunEvent::Epoch { id, state } => Some((id, laminar_json::to_string(&state))),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under every mapping, a run on the compiled backend and the same
    /// run on the interpreter agree: exactly (outputs in order, prints
    /// in order) for Simple, and as multisets for the parallel
    /// mappings, whose interleaving is scheduling-dependent but whose
    /// per-instance computation must not depend on the backend.
    #[test]
    fn vm_and_interpreter_agree_across_mappings(
        op in prop::sample::select(vec!["+", "*", "-"]),
        k in 1..9i64,
        nkeys in 2..5usize,
        iters in 4..40i64,
        procs in 2..6usize,
    ) {
        let src = workload_source(op, k, nkeys);
        let g = build_workload(&src);

        let vm_opts = RunOptions::iterations(iters);
        let interp_opts = RunOptions::iterations(iters).with_interpreter(true);
        let vm = SimpleMapping.execute(&g, &vm_opts).unwrap();
        let interp = SimpleMapping.execute(&g, &interp_opts).unwrap();
        prop_assert_eq!(&vm.outputs, &interp.outputs, "simple outputs diverged");
        prop_assert_eq!(&vm.printed, &interp.printed, "simple prints diverged");

        let vm_opts = vm_opts.with_processes(procs);
        let interp_opts = interp_opts.with_processes(procs);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let vm = mapping.execute(&g, &vm_opts).unwrap();
            let interp = mapping.execute(&g, &interp_opts).unwrap();
            prop_assert_eq!(
                sorted_strings(&vm, "Fmt"),
                sorted_strings(&interp, "Fmt"),
                "{} outputs diverged", mapping.kind()
            );
            prop_assert_eq!(
                sorted_prints(&vm),
                sorted_prints(&interp),
                "{} prints diverged", mapping.kind()
            );
            prop_assert_eq!(
                &vm.stats.processed, &interp.stats.processed,
                "{} processed counts diverged", mapping.kind()
            );
        }
    }

    /// Seeded RNG parity end to end: each PE instance derives its seed
    /// from the graph seed and its instance id, so for a fixed mapping
    /// and process count the two backends must draw identical random
    /// streams.
    #[test]
    fn seeded_rng_agrees_across_backends(
        lo in 1..5i64,
        span in 1..20i64,
        iters in 1..30i64,
        procs in 2..5usize,
    ) {
        let hi = lo + span;
        let src = format!(
            r#"
            pe Dice : producer {{
                output output;
                process {{ emit([randint({lo}, {hi}), random(), shuffle([1, 2, 3, 4])]); }}
            }}
            pe Tag : iterative {{
                input x;
                output output;
                process {{ emit(str(x[0]) + "|" + str(x[2][0])); }}
            }}
            "#
        );
        let mut g = WorkflowGraph::new("rng");
        let a = g.add_script_pe(&src, "Dice").unwrap();
        let b = g.add_script_pe(&src, "Tag").unwrap();
        g.connect(a, "output", b, "x").unwrap();

        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let opts = RunOptions::iterations(iters).with_processes(procs);
            let vm = mapping.execute(&g, &opts).unwrap();
            let interp = mapping.execute(&g, &opts.clone().with_interpreter(true)).unwrap();
            prop_assert_eq!(
                sorted_strings(&vm, "Tag"),
                sorted_strings(&interp, "Tag"),
                "{} rng streams diverged", mapping.kind()
            );
        }
    }

    /// Checkpoint parity: the epoch snapshots a checkpointed run emits
    /// must be *byte-identical* between the compiled backend and the
    /// interpreter, under every mapping. This is the property the
    /// durable journal leans on — a checkpoint written by one backend
    /// must be resumable by the other, so serialized `state.*`, RNG
    /// cursors, and group-by tables may not differ even in map ordering.
    #[test]
    fn epoch_snapshots_are_byte_identical_across_backends(
        op in prop::sample::select(vec!["+", "*"]),
        k in 1..9i64,
        nkeys in 2..4usize,
        chunk in 2..6usize,
        epochs in 2..5u64,
        procs in 2..5usize,
    ) {
        // One extra iteration past the last full chunk: the partial tail
        // must not grow an epoch of its own.
        let iters = (chunk as u64 * epochs) as i64 + 1;
        let src = workload_source(op, k, nkeys);
        let g = build_workload(&src);

        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let opts = RunOptions::iterations(iters).with_processes(procs).with_checkpoints(chunk);
            let vm = epoch_states(mapping, &g, &opts);
            let interp = epoch_states(mapping, &g, &opts.clone().with_interpreter(true));
            let ids: Vec<u64> = vm.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(
                ids,
                (1..=epochs).collect::<Vec<u64>>(),
                "{} epoch ids off", mapping.kind()
            );
            prop_assert_eq!(vm, interp, "{} snapshots diverged between backends", mapping.kind());
        }
    }

    /// Failure parity: a script that faults mid-run must fail on both
    /// backends, and under the deterministic Simple mapping the error
    /// text must match verbatim (same kind, message, and source line —
    /// both backends execute the canonical reparse).
    #[test]
    fn runtime_errors_agree_across_backends(
        fail_at in 0..8i64,
        iters in 8..20i64,
        procs in 2..4usize,
    ) {
        let src = format!(
            r#"
            pe Src : producer {{ output output; process {{ emit(iteration); }} }}
            pe Trip : iterative {{
                input x;
                output output;
                process {{
                    if x == {fail_at} {{ emit(1 / (x - {fail_at})); }}
                    emit(x + 1);
                }}
            }}
            "#
        );
        let mut g = WorkflowGraph::new("trip");
        let a = g.add_script_pe(&src, "Src").unwrap();
        let b = g.add_script_pe(&src, "Trip").unwrap();
        g.connect(a, "output", b, "x").unwrap();
        let opts = RunOptions::iterations(iters);

        let vm = SimpleMapping.execute(&g, &opts).unwrap_err();
        let interp = SimpleMapping.execute(&g, &opts.clone().with_interpreter(true)).unwrap_err();
        prop_assert_eq!(vm.to_string(), interp.to_string(), "simple error text diverged");

        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let opts = opts.clone().with_processes(procs);
            let vm = mapping.execute(&g, &opts);
            let interp = mapping.execute(&g, &opts.clone().with_interpreter(true));
            prop_assert!(vm.is_err(), "{} vm run should fail", mapping.kind());
            prop_assert!(interp.is_err(), "{} interp run should fail", mapping.kind());
        }
    }
}
