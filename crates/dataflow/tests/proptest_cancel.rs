//! Cancellation determinism properties.
//!
//! The contract introduced with cooperative cancellation: a cancelled
//! deterministic (Simple) run emits **exactly a prefix** of the event
//! stream the uncancelled run produces, sealed by `RunEvent::Cancelled`
//! — so folding the cancelled recording equals the prefix-fold of the
//! recorded batch stream. Cancel-at-seq-N is driven from inside the
//! observer, the same vantage point a streaming consumer has.

use laminar_dataflow::mapping::{Mapping, SimpleMapping};
use laminar_dataflow::{
    fold_events, CancelToken, DataflowError, RecordingObserver, RunEvent, RunObserver, RunOptions,
    WorkflowGraph,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn pipeline_source(op1: &str, k1: i64, op2: &str, k2: i64) -> String {
    format!(
        r#"
        pe Src : producer {{ output output; process {{ emit(iteration); }} }}
        pe M1 : iterative {{ input x; output output; process {{ emit(x {op1} {k1}); }} }}
        pe M2 : iterative {{ input x; output output; process {{ if x % 2 == 0 {{ emit(x {op2} {k2}); }} print("saw", x); }} }}
        "#
    )
}

fn build(src: &str) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("gen");
    let a = g.add_script_pe(src, "Src").unwrap();
    let b = g.add_script_pe(src, "M1").unwrap();
    let c = g.add_script_pe(src, "M2").unwrap();
    g.connect(a, "output", b, "x").unwrap();
    g.connect(b, "output", c, "x").unwrap();
    g
}

/// Records the stream and fires the token once `at` events were seen.
struct CancelAt {
    token: CancelToken,
    at: u64,
    events: Mutex<Vec<RunEvent>>,
}

impl RunObserver for CancelAt {
    fn on_event(&self, seq: u64, event: &RunEvent) {
        self.events.lock().push(event.clone());
        if seq + 1 >= self.at {
            self.token.cancel();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Cancel-at-random-seq: the cancelled run's fold equals the
    /// prefix-fold of the recorded batch stream, event for event.
    #[test]
    fn cancel_at_seq_folds_to_a_prefix_fold_of_the_batch_stream(
        op1 in prop::sample::select(vec!["+", "*", "-"]),
        k1 in 1..7i64,
        op2 in prop::sample::select(vec!["+", "*"]),
        k2 in 1..7i64,
        iters in 3..30i64,
        at in 1u64..140,
    ) {
        let src = pipeline_source(op1, k1, op2, k2);
        let g = build(&src);

        // Reference: the deterministic batch stream, recorded once.
        let recorder = RecordingObserver::new();
        SimpleMapping
            .execute_observed(
                &g,
                &RunOptions::iterations(iters),
                Some(recorder.clone() as Arc<dyn RunObserver>),
            )
            .unwrap();
        let batch: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();

        // The same run, cancelled after `at` events.
        let token = CancelToken::new();
        let observer = Arc::new(CancelAt { token: token.clone(), at, events: Mutex::new(Vec::new()) });
        let opts = RunOptions::iterations(iters).with_cancel(token);
        let result = SimpleMapping
            .execute_observed(&g, &opts, Some(Arc::clone(&observer) as Arc<dyn RunObserver>));
        let recorded = observer.events.lock().clone();

        match result {
            // The trigger landed while the run was still driving: the
            // recording must be an exact batch prefix sealed by Cancelled.
            Err(DataflowError::Cancelled) => {
                prop_assert!(
                    matches!(recorded.last(), Some(RunEvent::Cancelled)),
                    "cancelled stream must end with the Cancelled marker"
                );
                let prefix = &recorded[..recorded.len() - 1];
                prop_assert!(prefix.len() <= batch.len());
                prop_assert_eq!(
                    prefix,
                    &batch[..prefix.len()],
                    "cancelled stream diverged from the batch prefix"
                );
                // The headline property: fold(cancelled recording) ==
                // prefix-fold(batch stream).
                let folded = fold_events(recorded.clone());
                let prefix_folded = fold_events(batch[..prefix.len()].iter().cloned());
                prop_assert_eq!(&folded.outputs, &prefix_folded.outputs);
                prop_assert_eq!(&folded.printed, &prefix_folded.printed);
                prop_assert_eq!(&folded.stats, &prefix_folded.stats);
            }
            // The trigger seq was beyond the run's drive loop (or the
            // whole stream): the run completed untouched and recorded the
            // full batch stream (modulo the wall-clock timings only the
            // terminal Finished event carries).
            Ok(_) => {
                prop_assert_eq!(recorded.len(), batch.len());
                prop_assert_eq!(
                    &recorded[..recorded.len() - 1],
                    &batch[..batch.len() - 1],
                    "uncancelled replay must equal the batch stream"
                );
                match (recorded.last(), batch.last()) {
                    (
                        Some(RunEvent::Finished { stats: a }),
                        Some(RunEvent::Finished { stats: b }),
                    ) => {
                        prop_assert_eq!(&a.processed, &b.processed);
                        prop_assert_eq!(&a.emitted, &b.emitted);
                        prop_assert_eq!(a.events, b.events);
                    }
                    other => prop_assert!(false, "both streams must end in Finished: {other:?}"),
                }
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Cancelling before the run starts yields the plan-stage prefix and
    /// no data events, for any pipeline.
    #[test]
    fn pre_cancelled_runs_emit_no_data(
        iters in 1..20i64,
    ) {
        let src = pipeline_source("+", 1, "*", 2);
        let g = build(&src);
        let token = CancelToken::new();
        token.cancel();
        let recorder = RecordingObserver::new();
        let err = SimpleMapping
            .execute_observed(
                &g,
                &RunOptions::iterations(iters).with_cancel(token),
                Some(recorder.clone() as Arc<dyn RunObserver>),
            )
            .unwrap_err();
        prop_assert_eq!(err, DataflowError::Cancelled);
        let events: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();
        prop_assert!(matches!(events.last(), Some(RunEvent::Cancelled)));
        prop_assert!(
            !events.iter().any(|e| matches!(e, RunEvent::Output { .. } | RunEvent::Print { .. })),
            "a pre-cancelled run must not process data"
        );
        let folded = fold_events(events);
        prop_assert_eq!(folded.total_outputs(), 0);
    }
}
