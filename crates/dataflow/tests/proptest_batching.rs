//! Property tests for the batched transports: per-edge FIFO order and
//! cross-mapping output equivalence on fan-out graphs under every
//! [`Grouping`].
//!
//! The transports group each emission burst into one frame per destination
//! ([`Transport::send_batch`]); these properties pin down what batching
//! must preserve: data sent from one instance to one instance arrives in
//! send order, and the observable outputs agree with the sequential
//! Simple mapping.

use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::routing::Grouping;
use laminar_dataflow::{RunOptions, RunResult, WorkflowGraph};
use proptest::prelude::*;

/// A producer emitting `[key, seq]` tuples plus a checker that asserts the
/// sequence numbers it observes are strictly increasing. With a single
/// source instance (roots always plan one instance), each checker instance
/// sees a subsequence of one FIFO edge — any inversion is a batching bug.
const FIFO_SRC: &str = r#"
    pe Src : producer {
        output output;
        process { emit([iteration % 3, iteration]); }
    }
    pe Check : generic {
        input input;
        output output;
        init { state.last = 0 - 1; }
        process {
            let seq = input[1];
            if seq <= state.last { emit(["violation", seq, state.last]); }
            state.last = seq;
            emit(["seen", seq]);
        }
    }
"#;

fn fifo_graph(g1: Grouping, g2: Grouping) -> WorkflowGraph {
    // Fan-out: one source feeds two checker PEs over independently grouped
    // edges, so one emission burst routes to several destinations at once.
    let mut g = WorkflowGraph::new("fifo");
    let s = g.add_script_pe(FIFO_SRC, "Src").unwrap();
    let a = g.add_script_pe(FIFO_SRC, "Check").unwrap();
    let b = g.add_script_pe(FIFO_SRC, "Check").unwrap();
    g.connect_grouped(s, "output", a, "input", g1).unwrap();
    g.connect_grouped(s, "output", b, "input", g2).unwrap();
    g
}

fn groupings() -> Vec<Grouping> {
    vec![Grouping::Shuffle, Grouping::GroupBy(0), Grouping::OneToAll, Grouping::AllToOne]
}

/// Sequence numbers seen on `Check.output`, split into violations and data.
fn observations(r: &RunResult) -> (usize, Vec<i64>) {
    let mut violations = 0;
    let mut seen = Vec::new();
    for v in r.port_values("Check", "output") {
        match v[0].as_str() {
            Some("violation") => violations += 1,
            _ => seen.push(v[1].as_i64().unwrap()),
        }
    }
    seen.sort();
    (violations, seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under batching, every mapping preserves per-edge FIFO order for any
    /// pair of groupings on a fan-out graph: the stateful checker PEs
    /// observe strictly increasing sequence numbers.
    #[test]
    fn batched_transports_preserve_per_edge_fifo(
        iters in 5..60i64,
        procs in 2..8usize,
        gi in 0..4usize,
        gj in 0..4usize,
    ) {
        let g = fifo_graph(groupings()[gi], groupings()[gj]);
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            let (violations, _) = observations(&r);
            prop_assert_eq!(violations, 0, "{} reordered a FIFO edge", mapping.kind());
        }
    }

    /// Cross-mapping equivalence under batching: the *set* of sequence
    /// numbers observed matches the Simple mapping exactly, and for
    /// instance-count-independent groupings the multiset matches too.
    #[test]
    fn batched_transports_match_simple_outputs(
        iters in 5..50i64,
        procs in 2..7usize,
        gi in 0..4usize,
        gj in 0..4usize,
    ) {
        let (g1, g2) = (groupings()[gi], groupings()[gj]);
        let g = fifo_graph(g1, g2);
        let (base_viol, base_seen) = observations(
            &SimpleMapping.execute(&g, &RunOptions::iterations(iters)).unwrap(),
        );
        prop_assert_eq!(base_viol, 0);
        let opts = RunOptions::iterations(iters).with_processes(procs);
        let count_invariant = |grp: Grouping| !matches!(grp, Grouping::OneToAll);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            let (violations, seen) = observations(&r);
            prop_assert_eq!(violations, 0);
            if count_invariant(g1) && count_invariant(g2) {
                // No broadcast: exact multiset equivalence.
                prop_assert_eq!(&seen, &base_seen, "{} diverged from Simple", mapping.kind());
            } else {
                // Broadcast scales with the instance count; the distinct
                // sequence numbers still agree.
                let mut a = seen.clone();
                a.dedup();
                let mut b = base_seen.clone();
                b.dedup();
                prop_assert_eq!(&a, &b, "{} lost or invented data", mapping.kind());
            }
        }
    }

    /// Stats conservation holds under batching: every datum the source
    /// emits is processed by each fan-out branch.
    #[test]
    fn batched_stats_conservation(iters in 1..40i64, procs in 2..6usize) {
        let g = fifo_graph(Grouping::Shuffle, Grouping::GroupBy(0));
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &opts).unwrap();
            prop_assert_eq!(r.stats.processed["Src"], iters as u64);
            // Two edges leave the source: Check processes 2x the source's
            // emissions in total (both branches share the PE name).
            prop_assert_eq!(r.stats.processed["Check"], 2 * r.stats.emitted["Src"]);
        }
    }
}
