//! Property tests: the four mappings are observationally equivalent.
//!
//! For any generated stateless pipeline, Simple / Multi / MPI / Redis must
//! produce the same multiset of terminal outputs; for group-by stateful
//! pipelines, per-key aggregates must agree exactly; and for every
//! mapping, folding the recorded event stream of a run must reproduce its
//! batch `RunResult` bit-for-bit (the PR-4 emit-then-fold contract).

use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::{fold_events, RecordingObserver, RunObserver, RunOptions, WorkflowGraph};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a generated 3-stage pipeline: producer → map → map.
fn pipeline_source(op1: &str, k1: i64, op2: &str, k2: i64) -> String {
    format!(
        r#"
        pe Src : producer {{ output output; process {{ emit(iteration); }} }}
        pe M1 : iterative {{ input x; output output; process {{ emit(x {op1} {k1}); }} }}
        pe M2 : iterative {{ input x; output output; process {{ if x % 2 == 0 {{ emit(x {op2} {k2}); }} }} }}
        "#
    )
}

fn build(src: &str) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("gen");
    let a = g.add_script_pe(src, "Src").unwrap();
    let b = g.add_script_pe(src, "M1").unwrap();
    let c = g.add_script_pe(src, "M2").unwrap();
    g.connect(a, "output", b, "x").unwrap();
    g.connect(b, "output", c, "x").unwrap();
    g
}

fn sorted_outputs(r: &laminar_dataflow::RunResult) -> Vec<i64> {
    let mut out: Vec<i64> = r.port_values("M2", "output").iter().filter_map(|v| v.as_i64()).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four mappings agree on the output multiset of stateless
    /// pipelines.
    #[test]
    fn mappings_agree_on_stateless_pipelines(
        op1 in prop::sample::select(vec!["+", "*", "-"]),
        k1 in 1..7i64,
        op2 in prop::sample::select(vec!["+", "*"]),
        k2 in 1..7i64,
        iters in 1..40i64,
        procs in 2..7usize,
    ) {
        let src = pipeline_source(op1, k1, op2, k2);
        let g = build(&src);
        let baseline = sorted_outputs(&SimpleMapping.execute(&g, &RunOptions::iterations(iters)).unwrap());
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let got = sorted_outputs(&mapping.execute(&g, &opts).unwrap());
            prop_assert_eq!(&got, &baseline, "{} diverged", mapping.kind());
        }
    }

    /// Group-by keyed aggregation yields identical per-key totals under
    /// every mapping and any process count.
    #[test]
    fn groupby_totals_invariant(
        iters in 6..60i64,
        procs in 2..8usize,
        nkeys in 2..5usize,
    ) {
        let keys: Vec<String> = (0..nkeys).map(|i| format!("\"k{i}\"")).collect();
        let src = format!(
            r#"
            pe Words : producer {{ output output; process {{ emit([[{}][iteration % {nkeys}], 1]); }} }}
            pe Count : generic {{
                input input groupby 0;
                output output;
                init {{ state.n = {{}}; }}
                process {{
                    let w = input[0];
                    state.n[w] = get(state.n, w, 0) + 1;
                    emit([w, state.n[w]]);
                }}
            }}
            "#,
            keys.join(", ")
        );
        let mut g = WorkflowGraph::new("wc");
        let a = g.add_script_pe(&src, "Words").unwrap();
        let b = g.add_script_pe(&src, "Count").unwrap();
        g.connect(a, "output", b, "input").unwrap();

        let expected = |r: &laminar_dataflow::RunResult| {
            let mut best: std::collections::BTreeMap<String, i64> = Default::default();
            for v in r.port_values("Count", "output") {
                let e = best.entry(v[0].as_str().unwrap().to_string()).or_insert(0);
                *e = (*e).max(v[1].as_i64().unwrap());
            }
            best
        };

        let baseline = expected(&SimpleMapping.execute(&g, &RunOptions::iterations(iters)).unwrap());
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let got = expected(&mapping.execute(&g, &opts).unwrap());
            prop_assert_eq!(&got, &baseline, "{} diverged", mapping.kind());
        }
    }

    /// Stats conservation: everything a producer emits is processed
    /// downstream, under every mapping.
    #[test]
    fn stats_conservation(iters in 1..30i64, procs in 2..6usize) {
        let src = pipeline_source("+", 1, "*", 2);
        let g = build(&src);
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let r = mapping.execute(&g, &opts).unwrap();
            prop_assert_eq!(r.stats.processed["Src"], iters as u64);
            prop_assert_eq!(r.stats.processed["M1"], r.stats.emitted["Src"]);
            prop_assert_eq!(r.stats.processed["M2"], r.stats.emitted["M1"]);
        }
    }

    /// The emit-then-fold contract: for any generated pipeline, under
    /// every mapping, folding the recorded event stream of a run
    /// reproduces that run's batch `RunResult` bit-for-bit (outputs in
    /// order, prints in order, full stats including timings and the
    /// event count).
    #[test]
    fn fold_of_recorded_stream_equals_batch_result(
        op1 in prop::sample::select(vec!["+", "*", "-"]),
        k1 in 1..7i64,
        op2 in prop::sample::select(vec!["+", "*"]),
        k2 in 1..7i64,
        iters in 1..40i64,
        procs in 2..7usize,
    ) {
        let src = pipeline_source(op1, k1, op2, k2);
        let g = build(&src);
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let recorder = RecordingObserver::new();
            let result = mapping
                .execute_observed(&g, &opts, Some(recorder.clone() as Arc<dyn RunObserver>))
                .unwrap();
            let refolded = fold_events(recorder.take().into_iter().map(|(_, _, e)| e));
            prop_assert_eq!(&refolded.outputs, &result.outputs, "{} outputs diverged", mapping.kind());
            prop_assert_eq!(&refolded.printed, &result.printed, "{} prints diverged", mapping.kind());
            prop_assert_eq!(&refolded.stats, &result.stats, "{} stats diverged", mapping.kind());
        }
    }

    /// Observed and batch runs of the same deterministic pipeline agree:
    /// attaching an observer must not change what the run computes.
    #[test]
    fn observation_does_not_perturb_results(iters in 1..30i64, procs in 2..6usize) {
        let src = pipeline_source("*", 3, "+", 1);
        let g = build(&src);
        let opts = RunOptions::iterations(iters).with_processes(procs);
        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let batch = mapping.execute(&g, &opts).unwrap();
            let recorder = RecordingObserver::new();
            let observed = mapping
                .execute_observed(&g, &opts, Some(recorder.clone() as Arc<dyn RunObserver>))
                .unwrap();
            prop_assert_eq!(sorted_outputs(&batch), sorted_outputs(&observed), "{}", mapping.kind());
            prop_assert_eq!(&batch.stats.processed, &observed.stats.processed, "{}", mapping.kind());
            prop_assert_eq!(&batch.stats.emitted, &observed.stats.emitted, "{}", mapping.kind());
            prop_assert_eq!(batch.stats.events, observed.stats.events, "{}", mapping.kind());
        }
    }
}
