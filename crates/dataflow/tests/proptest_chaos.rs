//! The chaos suite: crash the runtime at a *random* epoch with an
//! injected fault, rebuild a resume point from exactly what a journal
//! would have retained — the last complete epoch's snapshot plus the
//! recorded event prefix — and require the refolded result to equal the
//! uninterrupted batch run, under every mapping and both script
//! backends.
//!
//! This is the durability claim as a property:
//!
//! ```text
//! fold(checkpoint + replayed events) == fold(batch)
//! ```
//!
//! Comparisons use outputs, prints, and processed/emitted counts —
//! never timings or raw event counts, which legitimately differ once
//! epoch markers enter the stream.
//!
//! Case count honors `PROPTEST_CASES` (the `chaos` CI tier raises it);
//! the default keeps plain `cargo test` latency in line with the other
//! mapping suites.

use std::sync::Arc;

use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::{
    DataflowError, FaultPlan, MappingKind, RecordingObserver, ResumePoint, RunEvent, RunObserver, RunOptions,
    RunResult, WorkflowGraph,
};
use proptest::prelude::*;

/// Producer → stateful group-by fold → formatter. State tables, seeded
/// RNG, and prints all have to survive the crash/resume boundary.
fn chaos_source(nkeys: usize, mix: i64) -> String {
    format!(
        r#"
        pe Pump : producer {{
            output output;
            process {{
                let key = "k" + str(iteration % {nkeys});
                emit([key, iteration * {mix} + randint(0, 9)]);
            }}
        }}
        pe Fold : generic {{
            input input groupby 0;
            output output;
            init {{ state.sums = {{}}; state.count = 0; }}
            process {{
                let key = input[0];
                state.sums[key] = get(state.sums, key, 0) + input[1];
                state.count = state.count + 1;
                if state.count % 4 == 0 {{ print("mark", key, state.count); }}
                emit([key, state.sums[key]]);
            }}
        }}
        pe Tail : iterative {{
            input x;
            output output;
            process {{ emit(x[0] + "=" + str(x[1])); }}
        }}
        "#
    )
}

fn build(src: &str) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("chaos");
    let a = g.add_script_pe(src, "Pump").unwrap();
    let b = g.add_script_pe(src, "Fold").unwrap();
    let c = g.add_script_pe(src, "Tail").unwrap();
    g.connect(a, "output", b, "input").unwrap();
    g.connect(b, "output", c, "x").unwrap();
    g
}

fn sorted_outputs(r: &RunResult) -> Vec<String> {
    let mut out: Vec<String> =
        r.port_values("Tail", "output").iter().filter_map(|v| v.as_str().map(str::to_string)).collect();
    out.sort();
    out
}

fn sorted_prints(r: &RunResult) -> Vec<String> {
    let mut p = r.printed.clone();
    p.sort();
    p
}

/// Crash `mapping` at epoch `kill_at` while recording the event stream
/// (the in-memory stand-in for the engine's journal), then resume from
/// the recorded prefix and run to completion. Returns the resumed
/// result together with the events the crashed run left behind, so a
/// caller can crash the *resumed* run again.
fn crash_once(
    mapping: &dyn Mapping,
    g: &WorkflowGraph,
    opts: &RunOptions,
    kill_at: u64,
    journal: Vec<RunEvent>,
) -> (RunOptions, Vec<RunEvent>) {
    let recorder = RecordingObserver::new();
    let mut crash = opts.clone().with_faults(FaultPlan { kill_at_epoch: Some(kill_at), ..FaultPlan::none() });
    if !journal.is_empty() {
        let (epoch, snapshots) = last_epoch(&journal);
        crash = crash.with_resume(ResumePoint { epoch, snapshots, events: journal.clone() });
    }
    let err =
        mapping.execute_observed(g, &crash, Some(recorder.clone() as Arc<dyn RunObserver>)).unwrap_err();
    assert_eq!(err, DataflowError::Injected { epoch: kill_at }, "{} wrong crash", mapping.kind());

    // The journal after the crash: everything already persisted before
    // this attempt plus everything the attempt streamed, which by the
    // kill-ordering contract ends with the epoch marker itself.
    let mut events = journal;
    events.extend(recorder.take().into_iter().map(|(_, _, e)| e));
    let (epoch, snapshots) = last_epoch(&events);
    assert_eq!(epoch, kill_at, "{} journal should end at the kill epoch", mapping.kind());
    let resumed = opts.clone().with_resume(ResumePoint { epoch, snapshots, events: events.clone() });
    (resumed, events)
}

fn last_epoch(events: &[RunEvent]) -> (u64, laminar_json::Value) {
    events
        .iter()
        .rev()
        .find_map(|e| match e {
            RunEvent::Epoch { id, state } => Some((*id, state.clone())),
            _ => None,
        })
        .expect("no epoch in recorded stream")
}

fn assert_refolds(mapping: &dyn Mapping, resumed: &RunResult, batch: &RunResult) {
    if mapping.kind() == MappingKind::Simple {
        // Sequential enactment is fully deterministic: exact equality.
        assert_eq!(resumed.outputs, batch.outputs, "simple outputs diverged");
        assert_eq!(resumed.printed, batch.printed, "simple prints diverged");
    } else {
        assert_eq!(sorted_outputs(resumed), sorted_outputs(batch), "{} outputs diverged", mapping.kind());
        assert_eq!(sorted_prints(resumed), sorted_prints(batch), "{} prints diverged", mapping.kind());
    }
    assert_eq!(&resumed.stats.processed, &batch.stats.processed, "{} processed diverged", mapping.kind());
    assert_eq!(&resumed.stats.emitted, &batch.stats.emitted, "{} emitted diverged", mapping.kind());
}

/// Explicit `with_cases` beats the `PROPTEST_CASES` environment variable
/// in this workspace's runner, so read it ourselves: full-depth chaos
/// when the CI tier asks for it, mapping-suite depth otherwise.
fn chaos_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Crash at a random epoch, resume, and refold to the batch result —
    /// every mapping, either script backend.
    #[test]
    fn crash_at_a_random_epoch_refolds_to_batch(
        nkeys in 2..5usize,
        mix in 1..7i64,
        chunk in 2..6usize,
        epochs in 2..5u64,
        kill_pick in 0..16u64,
        tail in 0..2i64,
        procs in 2..5usize,
        backend in 0..2usize,
    ) {
        let kill_at = 1 + kill_pick % epochs;
        let iters = (chunk as u64 * epochs) as i64 + tail;
        let src = chaos_source(nkeys, mix);
        let g = build(&src);

        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let opts = RunOptions::iterations(iters)
                .with_processes(procs)
                .with_checkpoints(chunk)
                .with_interpreter(backend == 1);
            let batch = mapping
                .execute(&g, &RunOptions::iterations(iters).with_processes(procs).with_interpreter(backend == 1))
                .unwrap();
            let (resume_opts, _) = crash_once(mapping, &g, &opts, kill_at, Vec::new());
            let resumed = mapping.execute(&g, &resume_opts).unwrap();
            assert_refolds(mapping, &resumed, &batch);
        }
    }

    /// Two crashes back to back: the run dies at one epoch, the *resumed*
    /// run dies at a later epoch, and the second resume still refolds to
    /// batch. This is the journal-keeps-growing-across-restarts contract:
    /// the second resume point is built from the concatenation of both
    /// attempts' streams, exactly as the engine's segment store would
    /// hold them.
    #[test]
    fn a_second_crash_during_resume_still_refolds_to_batch(
        nkeys in 2..4usize,
        mix in 1..5i64,
        chunk in 2..5usize,
        extra in 2..4u64,
        first_pick in 0..8u64,
        procs in 2..4usize,
    ) {
        // kill1 strictly before kill2 <= total epochs.
        let epochs = extra + 1;
        let kill1 = 1 + first_pick % (epochs - 1);
        let kill2 = kill1 + 1;
        let iters = (chunk as u64 * epochs) as i64 + 1;
        let src = chaos_source(nkeys, mix);
        let g = build(&src);

        for mapping in [
            &SimpleMapping as &dyn Mapping,
            &MultiMapping,
            &MpiMapping,
            &RedisMapping::default(),
        ] {
            let opts = RunOptions::iterations(iters).with_processes(procs).with_checkpoints(chunk);
            let batch = mapping
                .execute(&g, &RunOptions::iterations(iters).with_processes(procs))
                .unwrap();
            let (_, journal) = crash_once(mapping, &g, &opts, kill1, Vec::new());
            let (resume_opts, _) = crash_once(mapping, &g, &opts, kill2, journal);
            let resumed = mapping.execute(&g, &resume_opts).unwrap();
            assert_refolds(mapping, &resumed, &batch);
        }
    }
}
