//! Shared grammar-directed program generator for the property suites.
//!
//! Generates *source text* (always syntactically valid by construction) for
//! full scripts: optional helper functions, an optional `init` block, and a
//! `process` body drawn from a statement pool that covers every statement
//! form and the interesting expression shapes — including ones that error
//! at runtime (division by zero, undefined names, arity mismatches, deep
//! recursion, undeclared ports), because error parity is part of the
//! VM-vs-interpreter contract.

#![allow(dead_code)]

use laminar_json::Value;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use proptest::strategy::one_of;

/// The PE name every generated script uses.
pub const PE_NAME: &str = "Gen";

fn arb_expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-9..50i64).prop_map(|n| n.to_string()),
        select(vec!["0.5", "3.25", "10.0"]).prop_map(str::to_string),
        select(vec!["\"ab\"", "\"\"", "\"x y\\n\"", "\"héllo\""]).prop_map(str::to_string),
        select(vec!["true", "false", "null"]).prop_map(str::to_string),
        // `x`/`y` are always let-bound in the prelude; `data` is bound only
        // when the input port is named `data` (the dynamic-binding path);
        // `w` is bound only when a generated `let w` ran first.
        select(vec!["input", "x", "y", "iteration", "data", "w", "input_port"]).prop_map(str::to_string),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), select(vec!["+", "-", "*", "/", "%"]), inner.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            (inner.clone(), select(vec!["<", "<=", ">", ">=", "==", "!="]), inner.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            (inner.clone(), select(vec!["and", "or"]), inner.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            (select(vec!["-", "not "]), inner.clone()).prop_map(|(op, a)| format!("({op}{a})")),
            vec(inner.clone(), 0..3).prop_map(|items| format!("[{}]", items.join(", "))),
            (select(vec!["k", "n", "z z"]), inner.clone()).prop_map(|(k, v)| format!("{{\"{k}\": {v}}}")),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| format!("({b})[{i}]")),
            inner.clone().prop_map(|b| format!("({b}).f")),
            Just("state.acc".to_string()),
            // Calls: builtins, RNG, user functions (f1/f2/rec exist when
            // the script includes helpers), arity mistakes, unknown and
            // host functions.
            (
                select(vec![
                    "len([1, 2])",
                    "str",
                    "abs",
                    "get(state, \"acc\", 0)",
                    "randint(1, 6)",
                    "random()",
                    "shuffle([3, 1, 2])",
                    "f1",
                    "f2(2, 3)",
                    "rec(3)",
                    "rec(200)",
                    "f1(1, 2)",
                    "no_such_fn(1)",
                    "vo.fetch(1)",
                    "math.sqrt(4)",
                    "upper(\"aB\")",
                    "sum([1, 2, 3])",
                    "pow(2, 5)",
                ]),
                inner
            )
                .prop_map(|(f, a)| if f.contains('(') {
                    f.to_string()
                } else {
                    format!("{f}({a})")
                }),
        ]
    })
}

fn arb_stmts(depth: u32) -> BoxedStrategy<String> {
    vec(arb_stmt(depth), 0..4).prop_map(|v| v.join(" "))
}

fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
    let e = arb_expr();
    let mut arms: Vec<BoxedStrategy<String>> = vec![
        (select(vec!["w", "x", "tmp"]), e.clone()).prop_map(|(v, e)| format!("let {v} = {e};")).boxed(),
        (select(vec!["x", "y", "w", "data", "state.acc", "state.m[\"k\"]", "state.m[x]", "x[0]"]), e.clone())
            .prop_map(|(t, e)| format!("{t} = {e};"))
            .boxed(),
        e.clone().prop_map(|e| format!("print(\"v\", {e});")).boxed(),
        e.clone().prop_map(|e| format!("emit({e});")).boxed(),
        (select(vec!["out2", "output", "nope"]), e.clone())
            .prop_map(|(p, e)| format!("emit(\"{p}\", {e});"))
            .boxed(),
        e.clone().prop_map(|e| format!("return {e};")).boxed(),
        Just("return;".to_string()).boxed(),
        e.clone().prop_map(|e| format!("{e};")).boxed(),
        // Flow-control statements outside any loop terminate the body in
        // the interpreter; keep them rare but present.
        select(vec!["break;", "continue;"]).prop_map(str::to_string).boxed(),
    ];
    if depth > 0 {
        arms.push(
            (e.clone(), arb_stmts(depth - 1), arb_stmts(depth - 1))
                .prop_map(|(c, a, b)| format!("if {c} {{ {a} }} else {{ {b} }}"))
                .boxed(),
        );
        arms.push((e.clone(), arb_stmts(depth - 1)).prop_map(|(c, a)| format!("if {c} {{ {a} }}")).boxed());
        // Bounded while loop, occasionally with break/continue.
        arms.push(
            (
                (1..4i64),
                arb_stmts(depth - 1),
                select(vec!["", "if (i9 == 1) { break; }", "if (i9 == 1) { continue; }"]),
            )
                .prop_map(|(k, body, bc)| {
                    format!("let i9 = 0; while (i9 < {k}) {{ i9 = i9 + 1; {bc} {body} }}")
                })
                .boxed(),
        );
        // Unbounded loop: fuel-exhaustion parity (burn order matters).
        arms.push(arb_stmts(depth - 1).prop_map(|body| format!("while true {{ {body} }}")).boxed());
        arms.push(
            (
                select(vec!["range(0, 3)", "[1, \"a\", 2.5]", "\"héllo\"", "{\"a\": 1, \"b\": 2}", "x"]),
                arb_stmts(depth - 1),
            )
                .prop_map(|(it, body)| format!("for fv in {it} {{ {body} }}"))
                .boxed(),
        );
    }
    one_of(arms)
}

/// A whole generated script: helpers, one PE named [`PE_NAME`].
pub fn arb_script_source() -> BoxedStrategy<String> {
    let helpers = "\
        fn f1(a) { return a + 1; } \
        fn f2(a, b) { if (a > b) { return a - b; } return a * b; } \
        fn rec(n) { if (n <= 0) { return 0; } return rec(n - 1) + 1; } ";
    (select(vec!["input", "data"]), proptest::bool::ANY, proptest::bool::ANY, arb_stmts(2))
        .prop_map(move |(port, with_helpers, with_init, body)| {
            let mut src = String::new();
            if with_helpers {
                src.push_str(helpers);
            }
            src.push_str(&format!("pe {PE_NAME} : generic {{ input {port}; output output; output out2; "));
            if with_init {
                src.push_str("init { state.acc = 0; state.m = {}; } ");
            }
            // Prelude keeps `x`/`y` always defined so the body isn't
            // dominated by NameErrors.
            src.push_str(&format!("process {{ let x = input; let y = iteration; {body} }} }}"));
            src
        })
        .boxed()
}

/// A datum to feed a generated PE.
pub fn arb_input() -> BoxedStrategy<Value> {
    prop_oneof![
        (-9..99i64).prop_map(Value::Int),
        select(vec!["", "a", "the", "x y"]).prop_map(|s| Value::Str(s.to_string())),
        select(vec![0.0, 1.5, -2.25]).prop_map(Value::Float),
        Just(Value::Null),
        Just(Value::Bool(true)),
        vec((-5..50i64).prop_map(Value::Int), 0..4).prop_map(Value::Array),
        proptest::collection::btree_map("[a-c]{1,2}", (-5..50i64).prop_map(Value::Int), 0..3)
            .prop_map(|m| Value::Object(m.into_iter().collect())),
    ]
    .boxed()
}

/// Which port label to deliver the datum on: `None` (default-input
/// fallback), the matching declared port, or a foreign label.
pub fn arb_port_choice() -> BoxedStrategy<u8> {
    (0..3u8).boxed()
}
