//! Differential property suite: the bytecode VM must be observationally
//! identical to the tree-walking interpreter on generated programs.
//!
//! Compared per invocation: the `Result` (returned value, or error
//! kind/message/line/column), the full `state` value, and the remaining
//! fuel (which pins the *order* of fuel burns, not just the total). Compared
//! at the end: every emission (port + value, in order) and every print.
//!
//! Low fuel budgets are part of the strategy space so that exhaustion
//! inside loops, calls and composite expressions lands on the same
//! instruction in both engines.

mod common;

use laminar_json::Value;
use laminar_script::{compile_script, parse_script, Interp, NullHost, VecSink, Vm};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

fn check_differential(src: &str, runs: &[(Value, u8)], fuel: u64, seed: u64) {
    let script = parse_script(src).expect("generated source parses");
    let program = Arc::new(compile_script(&script).expect("generated source compiles"));
    let decl = script.pe(common::PE_NAME).expect("PE present");
    let port_name = decl.inputs.first().map(|p| p.name.clone()).unwrap();

    let mut interp = Interp::new(&script, Arc::new(NullHost)).with_fuel(fuel).with_seed(seed);
    let mut vm = Vm::new(program, Arc::new(NullHost)).with_fuel(fuel).with_seed(seed);

    let mut istate = Value::Null;
    let mut vstate = Value::Null;
    let mut isink = VecSink::default();
    let mut vsink = VecSink::default();

    let ii = interp.run_init(decl, &mut istate, &mut isink);
    let vi = vm.run_init(common::PE_NAME, &mut vstate, &mut vsink);
    assert_eq!(ii, vi, "init result diverged\n--- source ---\n{src}");
    assert_eq!(istate, vstate, "state diverged after init\n--- source ---\n{src}");

    for (it, (input, port_choice)) in runs.iter().enumerate() {
        let port = match port_choice {
            0 => None,
            1 => Some(port_name.as_str()),
            _ => Some("other"),
        };
        let ir = interp.run_process(decl, Some(input.clone()), port, it as i64, &mut istate, &mut isink);
        let vr =
            vm.run_process(common::PE_NAME, Some(input.clone()), port, it as i64, &mut vstate, &mut vsink);
        match (&ir, &vr) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "return value diverged at iteration {it}\n--- source ---\n{src}")
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.kind, b.kind, "error kind diverged at iteration {it}\n--- source ---\n{src}");
                assert_eq!(
                    a.message, b.message,
                    "error message diverged at iteration {it}\n--- source ---\n{src}"
                );
                assert_eq!(a.line, b.line, "error line diverged at iteration {it}\n--- source ---\n{src}");
                assert_eq!(
                    a.column, b.column,
                    "error column diverged at iteration {it}\n--- source ---\n{src}"
                );
            }
            _ => {
                panic!("Ok/Err divergence at iteration {it}: interp={ir:?} vm={vr:?}\n--- source ---\n{src}")
            }
        }
        assert_eq!(istate, vstate, "state diverged at iteration {it}\n--- source ---\n{src}");
        assert_eq!(
            interp.fuel_remaining(),
            vm.fuel_remaining(),
            "fuel diverged at iteration {it} (burn order is observable)\n--- source ---\n{src}"
        );
    }

    assert_eq!(isink.port_values(), vsink.port_values(), "emissions diverged\n--- source ---\n{src}");
    assert_eq!(isink.printed, vsink.printed, "prints diverged\n--- source ---\n{src}");
}

proptest! {
    /// VM == interpreter on generated programs under a generous budget.
    #[test]
    fn vm_matches_interp(
        src in common::arb_script_source(),
        runs in vec((common::arb_input(), common::arb_port_choice()), 1..4),
        seed in 0..16u64,
    ) {
        check_differential(&src, &runs, 200_000, seed);
    }

    /// Same, under tight budgets: fuel exhaustion must hit the same point.
    #[test]
    fn vm_matches_interp_under_fuel_pressure(
        src in common::arb_script_source(),
        runs in vec((common::arb_input(), common::arb_port_choice()), 1..3),
        fuel in 1..400u64,
        seed in 0..8u64,
    ) {
        check_differential(&src, &runs, fuel, seed);
    }

    /// The compiled program re-derived from the canonical form behaves the
    /// same as one compiled from the original source (the cache keys on the
    /// canonical form, so this is the soundness condition for sharing).
    /// Error *lines* are excluded: they are positions in the respective
    /// source text, which canonicalization legitimately reflows.
    #[test]
    fn canonical_recompile_matches(
        src in common::arb_script_source(),
        input in common::arb_input(),
        seed in 0..8u64,
    ) {
        let canonical = laminar_script::canonicalize(&src).unwrap();
        let p1 = Arc::new(compile_script(&parse_script(&src).unwrap()).unwrap());
        let p2 = Arc::new(compile_script(&parse_script(&canonical).unwrap()).unwrap());
        let mut out = Vec::new();
        for program in [p1, p2] {
            let mut vm = Vm::new(program, Arc::new(NullHost)).with_fuel(100_000).with_seed(seed);
            let mut state = Value::Null;
            let mut sink = VecSink::default();
            let _ = vm.run_init(common::PE_NAME, &mut state, &mut sink);
            let r = vm.run_process(common::PE_NAME, Some(input.clone()), None, 0, &mut state, &mut sink)
                .map_err(|e| (e.kind, e.message));
            out.push((r, state, sink.port_values(), sink.printed, vm.fuel_remaining()));
        }
        prop_assert_eq!(&out[0], &out[1]);
    }
}
