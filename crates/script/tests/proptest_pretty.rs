//! Round-trip property for the canonical printer: re-parsing pretty-printed
//! source yields the same AST (modulo line-number bookkeeping, which the
//! printer legitimately rewrites), and the printer is a fixed point.
//!
//! The compile cache keys on the canonical form, so these properties are
//! what make "same canonical source ⇒ same compiled program" sound.

mod common;

use laminar_script::{parse_script, to_source, Block, Expr, Item, Script, Stmt};
use proptest::prelude::*;

/// Erase line numbers so ASTs from differently-formatted sources compare
/// structurally.
fn strip_lines(script: &mut Script) {
    for item in &mut script.items {
        match item {
            Item::Fn(f) => strip_block(&mut f.body),
            Item::Pe(p) => {
                if let Some(init) = &mut p.init {
                    strip_block(init);
                }
                strip_block(&mut p.process);
            }
            Item::Import(_) | Item::Workflow(_) => {}
        }
    }
}

fn strip_block(b: &mut Block) {
    for s in &mut b.stmts {
        match s {
            Stmt::Let { value, .. } => strip_expr(value),
            Stmt::Assign { target, value } => {
                strip_expr(target);
                strip_expr(value);
            }
            Stmt::If { cond, then_block, else_block } => {
                strip_expr(cond);
                strip_block(then_block);
                if let Some(e) = else_block {
                    strip_block(e);
                }
            }
            Stmt::While { cond, body } => {
                strip_expr(cond);
                strip_block(body);
            }
            Stmt::For { iter, body, .. } => {
                strip_expr(iter);
                strip_block(body);
            }
            Stmt::Return(Some(e)) | Stmt::Emit(e) | Stmt::EmitTo { value: e, .. } | Stmt::ExprStmt(e) => {
                strip_expr(e)
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn strip_expr(e: &mut Expr) {
    match e {
        Expr::Var { line, .. } => *line = 0,
        Expr::List(items) => items.iter_mut().for_each(strip_expr),
        Expr::MapLit(pairs) => pairs.iter_mut().for_each(|(_, v)| strip_expr(v)),
        Expr::Binary { lhs, rhs, line, .. } => {
            *line = 0;
            strip_expr(lhs);
            strip_expr(rhs);
        }
        Expr::Unary { operand, line, .. } => {
            *line = 0;
            strip_expr(operand);
        }
        Expr::Call { args, line, .. } => {
            *line = 0;
            args.iter_mut().for_each(strip_expr);
        }
        Expr::Index { base, index, line } => {
            *line = 0;
            strip_expr(base);
            strip_expr(index);
        }
        Expr::Field { base, line, .. } => {
            *line = 0;
            strip_expr(base);
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null => {}
    }
}

proptest! {
    /// `parse(pretty(parse(src))) == parse(src)` as ASTs (line numbers
    /// erased on both sides).
    #[test]
    fn reparse_preserves_ast(src in common::arb_script_source()) {
        let mut ast1 = parse_script(&src).expect("generated source parses");
        let canonical = to_source(&ast1);
        let mut ast2 = parse_script(&canonical)
            .unwrap_or_else(|e| panic!("canonical source must re-parse: {e:?}\n--- canonical ---\n{canonical}"));
        strip_lines(&mut ast1);
        strip_lines(&mut ast2);
        prop_assert_eq!(&ast2, &ast1, "round-trip changed the AST\n--- canonical ---\n{}", canonical);
    }

    /// The printer is a fixed point on its own output.
    #[test]
    fn printer_is_fixed_point(src in common::arb_script_source()) {
        let canon1 = to_source(&parse_script(&src).unwrap());
        let canon2 = to_source(&parse_script(&canon1).unwrap());
        prop_assert_eq!(canon1, canon2);
    }
}
