//! Property tests for LamScript: printer/parser stability and interpreter
//! robustness.

use laminar_json::Value;
use laminar_script::{parse_script, to_source, Interp, NullHost, Script, VecSink};
use proptest::prelude::*;

/// Generate random (syntactically valid) PE sources from a grammar-directed
/// template space.
fn arb_pe_source() -> impl Strategy<Value = String> {
    let idents = prop::sample::select(vec!["x", "y", "total", "word", "acc", "v7"]);
    let ops = prop::sample::select(vec!["+", "-", "*", "%"]);
    let cmps = prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]);
    (idents, ops, cmps, 1..50i64, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(var, op, cmp, n, with_loop, with_state)| {
            let mut body = String::new();
            body.push_str(&format!("let {var} = input; "));
            if with_loop {
                body.push_str(&format!("let i = 0; while i < 3 {{ {var} = {var} {op} {n}; i = i + 1; }} "));
            } else {
                body.push_str(&format!("{var} = {var} {op} {n}; "));
            }
            if with_state {
                body.push_str("state.acc = get(state, \"acc\", 0) + 1; ");
            }
            body.push_str(&format!("if {var} {cmp} {n} {{ emit({var}); }} else {{ emit({n}); }}"));
            format!("pe Gen : iterative {{ input input; output output; process {{ {body} }} }}")
        },
    )
}

proptest! {
    /// The canonical printer is a fixed point: print(parse(print(parse(s))))
    /// == print(parse(s)).
    #[test]
    fn printer_fixed_point(src in arb_pe_source()) {
        let ast1 = parse_script(&src).unwrap();
        let canon1 = to_source(&ast1);
        let ast2 = parse_script(&canon1).expect("canonical source reparses");
        let canon2 = to_source(&ast2);
        prop_assert_eq!(canon1, canon2);
    }

    /// Generated PEs execute without panicking, and any emitted value is an
    /// Int (the grammar only produces integer dataflow).
    #[test]
    fn generated_pes_execute(src in arb_pe_source(), input in -100..100i64) {
        let script = parse_script(&src).unwrap();
        let pe = script.pe("Gen").unwrap();
        let mut interp = Interp::new(&script, std::sync::Arc::new(NullHost)).with_seed(1);
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        interp.run_init(pe, &mut state, &mut sink).unwrap();
        let r = interp.run_process(pe, Some(Value::Int(input)), None, 0, &mut state, &mut sink);
        prop_assert!(r.is_ok(), "execution failed: {:?}", r);
        for (_, v) in &sink.emitted {
            prop_assert!(matches!(v, Value::Int(_)));
        }
        // Exactly one emit happens per invocation in this grammar.
        prop_assert_eq!(sink.emitted.len(), 1);
    }

    /// The interpreter is deterministic for a fixed seed.
    #[test]
    fn deterministic_under_seed(src in arb_pe_source(), input in -100..100i64) {
        let script = parse_script(&src).unwrap();
        let pe = script.pe("Gen").unwrap();
        let run = || {
            let mut interp = Interp::new(&script, std::sync::Arc::new(NullHost)).with_seed(42);
            let mut state = Value::Null;
            let mut sink = VecSink::default();
            interp.run_init(pe, &mut state, &mut sink).unwrap();
            interp.run_process(pe, Some(Value::Int(input)), None, 0, &mut state, &mut sink).unwrap();
            sink.emitted
        };
        prop_assert_eq!(run(), run());
    }

    /// The parser never panics on arbitrary input strings.
    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_script(&s);
    }

    /// Canonicalize is idempotent where defined.
    #[test]
    fn canonicalize_idempotent(src in arb_pe_source()) {
        let once = laminar_script::canonicalize(&src).unwrap();
        let twice = laminar_script::canonicalize(&once).unwrap();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn script_type_is_reexported() {
    // Compile-time check that the facade exports line up.
    fn takes_script(_: &Script) {}
    let s = parse_script("import x;").unwrap();
    takes_script(&s);
}
