//! Static analysis over LamScript ASTs.
//!
//! Three consumers:
//!
//! * the **execution engine** calls [`imports`] (the `findimports`
//!   equivalent from the paper's web_client layer) to build the library
//!   install list;
//! * the **embedding models** call [`identifiers`], [`subtokens`] and
//!   [`def_use_pairs`] to build lexical, normalized and dataflow feature
//!   sets (the GraphCodeBERT substitute consumes the def-use edges);
//! * the **summarizer** calls [`CodeFacts::collect`] for its structural
//!   inventory.

use crate::ast::*;
use std::collections::BTreeSet;

/// All imports declared anywhere in the script (top-level and inside PEs),
/// deduplicated, as dotted paths. This is the list the engine "installs".
pub fn imports(script: &Script) -> Vec<String> {
    let mut set = BTreeSet::new();
    for item in &script.items {
        match item {
            Item::Import(path) => {
                set.insert(path.join("."));
            }
            Item::Pe(pe) => {
                for imp in &pe.imports {
                    set.insert(imp.join("."));
                }
            }
            _ => {}
        }
    }
    set.into_iter().collect()
}

/// Imports for a single PE declaration plus any module-qualified calls its
/// body makes (mirrors findimports scanning class bodies, paper §3.4.2).
pub fn pe_imports(pe: &PeDecl) -> Vec<String> {
    let mut set: BTreeSet<String> = pe.imports.iter().map(|p| p.join(".")).collect();
    let mut add_modules = |block: &Block| {
        walk_exprs(block, &mut |e| {
            if let Expr::Call { module: Some(m), .. } = e {
                if !crate::builtins::BUILTIN_MODULES.contains(&m.as_str()) && m != "strings" {
                    set.insert(m.clone());
                }
            }
        });
    };
    if let Some(init) = &pe.init {
        add_modules(init);
    }
    add_modules(&pe.process);
    set.into_iter().collect()
}

/// Does a block reference the `state` variable? Used to classify PEs as
/// stateful/stateless (paper §2.1).
pub fn mentions_state(block: &Block) -> bool {
    let mut found = false;
    walk_exprs(block, &mut |e| {
        if let Expr::Var { name, .. } = e {
            if name == "state" {
                found = true;
            }
        }
    });
    if found {
        return true;
    }
    // Assignment targets are exprs too, but walk_exprs covers them; `state`
    // may also appear only as an assign target root which is still an Expr.
    found
}

/// Every identifier occurring in a PE (ports, variables, called functions,
/// fields, map keys), in order of first appearance.
pub fn identifiers(pe: &PeDecl) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut seen = BTreeSet::new();
    let mut push = |s: &str| {
        if seen.insert(s.to_string()) {
            out.push(s.to_string());
        }
    };
    push(&pe.name);
    for p in &pe.inputs {
        push(&p.name);
    }
    for o in &pe.outputs {
        push(o);
    }
    let visit = |block: &Block, push: &mut dyn FnMut(&str)| {
        walk_exprs(block, &mut |e| match e {
            Expr::Var { name, .. } => push(name),
            Expr::Call { module, name, .. } => {
                if let Some(m) = module {
                    push(m);
                }
                push(name);
            }
            Expr::Field { field, .. } => push(field),
            Expr::MapLit(pairs) => {
                for (k, _) in pairs {
                    push(k);
                }
            }
            _ => {}
        });
        walk_stmts(block, &mut |s| match s {
            Stmt::Let { name, .. } => push(name),
            Stmt::For { var, .. } => push(var),
            Stmt::EmitTo { port, .. } => push(port),
            _ => {}
        });
    };
    if let Some(init) = &pe.init {
        visit(init, &mut push);
    }
    visit(&pe.process, &mut push);
    out
}

/// Split an identifier into lowercase subtokens on `snake_case`,
/// `camelCase`, `PascalCase` and digit boundaries.
///
/// ```
/// use laminar_script::analysis::subtokens;
/// assert_eq!(subtokens("getVoTable42"), vec!["get", "vo", "table", "42"]);
/// assert_eq!(subtokens("internal_ext"), vec!["internal", "ext"]);
/// ```
pub fn subtokens(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        let boundary = if cur.is_empty() {
            false
        } else if c.is_ascii_uppercase() {
            let prev = chars[i - 1];
            // camelCase boundary, or end of an ALLCAPS run (HTTPServer).
            prev.is_ascii_lowercase()
                || prev.is_ascii_digit()
                || (prev.is_ascii_uppercase() && chars.get(i + 1).is_some_and(|n| n.is_ascii_lowercase()))
        } else if c.is_ascii_digit() {
            !chars[i - 1].is_ascii_digit()
        } else {
            chars[i - 1].is_ascii_digit()
        };
        if boundary {
            out.push(std::mem::take(&mut cur));
        }
        cur.push(c.to_ascii_lowercase());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// A def→use dataflow edge: `use_var` flows into `def_var` via an
/// assignment. These edges are the "data flow" signal the GraphCodeBERT
/// substitute embeds.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DefUse {
    /// Variable being defined/assigned.
    pub def_var: String,
    /// Variable read on the right-hand side.
    pub use_var: String,
}

/// Collect def-use pairs from a PE's init and process blocks.
pub fn def_use_pairs(pe: &PeDecl) -> Vec<DefUse> {
    let mut out = BTreeSet::new();
    let mut scan = |block: &Block| {
        walk_stmts(block, &mut |s| {
            let (def, value) = match s {
                Stmt::Let { name, value } => (Some(name.clone()), Some(value)),
                Stmt::Assign { target, value } => (root_var(target), Some(value)),
                _ => (None, None),
            };
            if let (Some(def), Some(value)) = (def, value) {
                let mut uses = Vec::new();
                collect_vars(value, &mut uses);
                for u in uses {
                    out.insert(DefUse { def_var: def.clone(), use_var: u });
                }
            }
        });
    };
    if let Some(init) = &pe.init {
        scan(init);
    }
    scan(&pe.process);
    out.into_iter().collect()
}

/// Root variable of an lvalue chain (`state.count[w]` → `state`).
pub fn root_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Var { name, .. } => Some(name.clone()),
        Expr::Index { base, .. } | Expr::Field { base, .. } => root_var(base),
        _ => None,
    }
}

fn collect_vars(e: &Expr, out: &mut Vec<String>) {
    walk_expr(e, &mut |e| {
        if let Expr::Var { name, .. } = e {
            out.push(name.clone());
        }
    });
}

/// Structural facts about a PE, consumed by the summarizer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodeFacts {
    /// Called function names (unqualified).
    pub calls: Vec<String>,
    /// Called `module.function` pairs.
    pub module_calls: Vec<(String, String)>,
    /// Ports written by `emit`.
    pub emits_default: bool,
    /// Named ports written by `emit(port, ..)`.
    pub emit_ports: Vec<String>,
    /// Contains a loop.
    pub has_loop: bool,
    /// Contains branching.
    pub has_branch: bool,
    /// References `state`.
    pub uses_state: bool,
    /// Uses the RNG builtins.
    pub uses_random: bool,
    /// Number of statements (rough size).
    pub stmt_count: usize,
}

impl CodeFacts {
    /// Walk a PE and collect facts.
    pub fn collect(pe: &PeDecl) -> CodeFacts {
        let mut f = CodeFacts::default();
        let mut blocks: Vec<&Block> = vec![&pe.process];
        if let Some(init) = &pe.init {
            blocks.push(init);
        }
        for block in blocks {
            walk_stmts(block, &mut |s| {
                f.stmt_count += 1;
                match s {
                    Stmt::While { .. } | Stmt::For { .. } => f.has_loop = true,
                    Stmt::If { .. } => f.has_branch = true,
                    Stmt::Emit(_) => f.emits_default = true,
                    Stmt::EmitTo { port, .. } if !f.emit_ports.contains(port) => {
                        f.emit_ports.push(port.clone())
                    }
                    _ => {}
                }
            });
            walk_exprs(block, &mut |e| match e {
                Expr::Call { module: None, name, .. } => {
                    if matches!(name.as_str(), "randint" | "random" | "shuffle") {
                        f.uses_random = true;
                    }
                    if !f.calls.contains(name) {
                        f.calls.push(name.clone());
                    }
                }
                Expr::Call { module: Some(m), name, .. } => {
                    if m == "random" {
                        f.uses_random = true;
                    }
                    let pair = (m.clone(), name.clone());
                    if !f.module_calls.contains(&pair) {
                        f.module_calls.push(pair);
                    }
                }
                Expr::Var { name, .. } if name == "state" => f.uses_state = true,
                _ => {}
            });
        }
        f
    }
}

// ---- generic walkers ----------------------------------------------------

/// Visit every statement in a block, recursively (pre-order).
pub fn walk_stmts(block: &Block, visit: &mut dyn FnMut(&Stmt)) {
    for s in &block.stmts {
        visit(s);
        match s {
            Stmt::If { then_block, else_block, .. } => {
                walk_stmts(then_block, visit);
                if let Some(e) = else_block {
                    walk_stmts(e, visit);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => walk_stmts(body, visit),
            _ => {}
        }
    }
}

/// Visit every expression in a block, recursively.
pub fn walk_exprs(block: &Block, visit: &mut dyn FnMut(&Expr)) {
    walk_stmts(block, &mut |s| {
        let exprs: Vec<&Expr> = match s {
            Stmt::Let { value, .. } => vec![value],
            Stmt::Assign { target, value } => vec![target, value],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::While { cond, .. } => vec![cond],
            Stmt::For { iter, .. } => vec![iter],
            Stmt::Return(Some(e)) => vec![e],
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => vec![],
            Stmt::Emit(e) => vec![e],
            Stmt::EmitTo { value, .. } => vec![value],
            Stmt::ExprStmt(e) => vec![e],
        };
        for e in exprs {
            walk_expr(e, visit);
        }
    });
}

/// Visit an expression tree (pre-order).
pub fn walk_expr(e: &Expr, visit: &mut dyn FnMut(&Expr)) {
    visit(e);
    match e {
        Expr::List(items) => {
            for i in items {
                walk_expr(i, visit);
            }
        }
        Expr::MapLit(pairs) => {
            for (_, v) in pairs {
                walk_expr(v, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, visit),
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::Index { base, index, .. } => {
            walk_expr(base, visit);
            walk_expr(index, visit);
        }
        Expr::Field { base, .. } => walk_expr(base, visit),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    const WORDCOUNT: &str = r#"
        import collections;
        pe CountWords : generic {
            import collections;
            input input groupby 0;
            output output;
            init { state.count = {}; }
            process {
                let word = input[0];
                let n = input[1];
                state.count[word] = get(state.count, word, 0) + n;
                if state.count[word] > 10 { emit([word, state.count[word]]); }
            }
        }
    "#;

    #[test]
    fn imports_deduplicated() {
        let s = parse_script(WORDCOUNT).unwrap();
        assert_eq!(imports(&s), vec!["collections".to_string()]);
    }

    #[test]
    fn pe_imports_include_module_calls() {
        let src = r#"
            pe Astro : iterative {
                import astropy;
                input coords; output output;
                process { emit(vo.fetch(coords)); }
            }
        "#;
        let s = parse_script(src).unwrap();
        let pe = s.pe("Astro").unwrap();
        assert_eq!(pe_imports(pe), vec!["astropy".to_string(), "vo".to_string()]);
    }

    #[test]
    fn builtin_modules_not_importable() {
        let src = r#"
            pe M : iterative {
                input x; output output;
                process { emit(math.sqrt(x)); }
            }
        "#;
        let s = parse_script(src).unwrap();
        assert!(pe_imports(s.pe("M").unwrap()).is_empty());
    }

    #[test]
    fn state_detection() {
        let s = parse_script(WORDCOUNT).unwrap();
        let pe = s.pe("CountWords").unwrap();
        assert!(pe.is_stateful());
        assert!(mentions_state(&pe.process));
    }

    #[test]
    fn identifier_extraction() {
        let s = parse_script(WORDCOUNT).unwrap();
        let ids = identifiers(s.pe("CountWords").unwrap());
        for expected in ["CountWords", "input", "output", "state", "count", "word", "get"] {
            assert!(ids.iter().any(|i| i == expected), "missing {expected} in {ids:?}");
        }
        // Deduplicated.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn subtoken_splitting() {
        assert_eq!(subtokens("NumberProducer"), vec!["number", "producer"]);
        assert_eq!(subtokens("getVoTable"), vec!["get", "vo", "table"]);
        assert_eq!(subtokens("internal_ext"), vec!["internal", "ext"]);
        assert_eq!(subtokens("HTTPServer2"), vec!["http", "server", "2"]);
        assert_eq!(subtokens("readRaDec"), vec!["read", "ra", "dec"]);
        assert_eq!(subtokens(""), Vec::<String>::new());
        assert_eq!(subtokens("___"), Vec::<String>::new());
        assert_eq!(subtokens("x"), vec!["x"]);
    }

    #[test]
    fn def_use_edges() {
        let s = parse_script(WORDCOUNT).unwrap();
        let edges = def_use_pairs(s.pe("CountWords").unwrap());
        assert!(edges.contains(&DefUse { def_var: "word".into(), use_var: "input".into() }));
        assert!(edges.contains(&DefUse { def_var: "state".into(), use_var: "n".into() }));
        assert!(edges.contains(&DefUse { def_var: "state".into(), use_var: "word".into() }));
    }

    #[test]
    fn code_facts() {
        let s = parse_script(WORDCOUNT).unwrap();
        let f = CodeFacts::collect(s.pe("CountWords").unwrap());
        assert!(f.uses_state);
        assert!(f.has_branch);
        assert!(!f.has_loop);
        assert!(f.emits_default);
        assert!(f.calls.contains(&"get".to_string()));
        assert!(!f.uses_random);
        assert!(f.stmt_count >= 5);
    }

    #[test]
    fn random_detection() {
        let src = "pe R : producer { output o; process { emit(randint(1, 6)); } }";
        let s = parse_script(src).unwrap();
        let f = CodeFacts::collect(s.pe("R").unwrap());
        assert!(f.uses_random);
    }
}
