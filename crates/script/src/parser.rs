//! Recursive-descent parser for LamScript.
//!
//! Grammar summary (see crate docs for an example):
//!
//! ```text
//! script    := item* EOF
//! item      := import | fn | pe | workflow
//! pe        := "pe" IDENT ":" kind "{" member* "}"
//! member    := doc | import | input | output | init-block | process-block
//! stmt      := let | assign | if | while | for | return | break | continue
//!            | emit | expr-stmt
//! ```
//!
//! Expressions use conventional precedence:
//! `or < and < not < comparison < additive < multiplicative < unary < postfix`.

use crate::ast::*;
use crate::error::{ErrorKind, ScriptError};
use crate::lexer::{lex, Token, TokenKind};

/// Parse a full script (imports, functions, PEs, workflows).
pub fn parse_script(source: &str) -> Result<Script, ScriptError> {
    let tokens = lex(source)?;
    let mut p = P { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.check(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(Script { items })
}

/// Parse a single expression (used by tests and the REPL-style describe
/// tooling).
pub fn parse_expr(source: &str) -> Result<Expr, ScriptError> {
    let tokens = lex(source)?;
    let mut p = P { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof, "end of input")?;
    Ok(e)
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> ScriptError {
        let t = self.peek();
        ScriptError::at(ErrorKind::Parse, msg, t.line, t.column)
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, ScriptError> {
        if self.check(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ScriptError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            // Context keywords double as identifiers where unambiguous.
            TokenKind::Input => {
                self.bump();
                Ok("input".into())
            }
            TokenKind::Output => {
                self.bump();
                Ok("output".into())
            }
            TokenKind::Process => {
                self.bump();
                Ok("process".into())
            }
            _ => Err(self.err(format!("expected {what}, found {:?}", self.peek().kind))),
        }
    }

    // ---- items ------------------------------------------------------

    fn item(&mut self) -> Result<Item, ScriptError> {
        match &self.peek().kind {
            TokenKind::Import => {
                let path = self.import_path()?;
                Ok(Item::Import(path))
            }
            TokenKind::Fn => self.fn_decl().map(Item::Fn),
            TokenKind::Pe => self.pe_decl().map(Item::Pe),
            TokenKind::Workflow => self.workflow_decl().map(Item::Workflow),
            _ => Err(self.err("expected 'import', 'fn', 'pe' or 'workflow' at top level")),
        }
    }

    fn import_path(&mut self) -> Result<Vec<String>, ScriptError> {
        self.expect(TokenKind::Import, "'import'")?;
        let mut path = vec![self.ident("module name")?];
        while self.eat(&TokenKind::Dot) {
            path.push(self.ident("module segment")?);
        }
        self.expect(TokenKind::Semi, "';' after import")?;
        Ok(path)
    }

    fn fn_decl(&mut self) -> Result<FnDecl, ScriptError> {
        self.expect(TokenKind::Fn, "'fn'")?;
        let name = self.ident("function name")?;
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "')'")?;
        let body = self.block()?;
        Ok(FnDecl { name, params, body })
    }

    fn pe_decl(&mut self) -> Result<PeDecl, ScriptError> {
        self.expect(TokenKind::Pe, "'pe'")?;
        let name = self.ident("PE name")?;
        self.expect(TokenKind::Colon, "':' before PE kind")?;
        let kind_name = self.ident("PE kind")?;
        let kind = PeKind::parse(&kind_name).ok_or_else(|| {
            self.err(format!("unknown PE kind '{kind_name}' (expected producer/iterative/consumer/generic)"))
        })?;
        self.expect(TokenKind::LBrace, "'{'")?;

        let mut doc = None;
        let mut imports = Vec::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut init = None;
        let mut process = None;

        while !self.check(&TokenKind::RBrace) {
            match &self.peek().kind {
                TokenKind::Doc => {
                    self.bump();
                    let t = self.bump();
                    let TokenKind::Str(s) = t.kind else {
                        return Err(self.err("expected string literal after 'doc'"));
                    };
                    self.expect(TokenKind::Semi, "';' after doc string")?;
                    doc = Some(s);
                }
                TokenKind::Import => {
                    imports.push(self.import_path()?);
                }
                TokenKind::Input => {
                    self.bump();
                    let pname = self.ident("input port name")?;
                    let groupby = if self.eat(&TokenKind::Groupby) {
                        let t = self.bump();
                        let TokenKind::Int(n) = t.kind else {
                            return Err(self.err("expected integer index after 'groupby'"));
                        };
                        if n < 0 {
                            return Err(self.err("groupby index must be non-negative"));
                        }
                        Some(n as usize)
                    } else {
                        None
                    };
                    self.expect(TokenKind::Semi, "';' after input declaration")?;
                    inputs.push(PortDecl { name: pname, groupby });
                }
                TokenKind::Output => {
                    self.bump();
                    let pname = self.ident("output port name")?;
                    self.expect(TokenKind::Semi, "';' after output declaration")?;
                    outputs.push(pname);
                }
                TokenKind::Init => {
                    self.bump();
                    init = Some(self.block()?);
                }
                TokenKind::Process => {
                    self.bump();
                    process = Some(self.block()?);
                }
                _ => return Err(self.err("expected doc/import/input/output/init/process in PE body")),
            }
        }
        self.expect(TokenKind::RBrace, "'}'")?;

        let process = process.ok_or_else(|| self.err(format!("PE '{name}' is missing its process block")))?;

        // Enforce the archetype port shapes of dispel4py (paper §2.1).
        let shape_err = |msg: &str| ScriptError::new(ErrorKind::Parse, format!("PE '{name}': {msg}"));
        match kind {
            PeKind::Producer => {
                if !inputs.is_empty() {
                    return Err(shape_err("producer PEs take no input ports"));
                }
                if outputs.len() != 1 {
                    return Err(shape_err("producer PEs need exactly one output port"));
                }
            }
            PeKind::Iterative => {
                if inputs.len() != 1 || outputs.len() != 1 {
                    return Err(shape_err("iterative PEs need exactly one input and one output port"));
                }
            }
            PeKind::Consumer => {
                if inputs.len() != 1 || !outputs.is_empty() {
                    return Err(shape_err("consumer PEs need exactly one input port and no outputs"));
                }
            }
            PeKind::Generic => {
                if inputs.is_empty() && outputs.is_empty() {
                    return Err(shape_err("generic PEs need at least one port"));
                }
            }
        }

        Ok(PeDecl { name, kind, doc, imports, inputs, outputs, init, process })
    }

    fn workflow_decl(&mut self) -> Result<WorkflowDecl, ScriptError> {
        self.expect(TokenKind::Workflow, "'workflow'")?;
        let name = self.ident("workflow name")?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut doc = None;
        let mut nodes = Vec::new();
        let mut connects = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            match &self.peek().kind {
                TokenKind::Doc => {
                    self.bump();
                    let t = self.bump();
                    let TokenKind::Str(s) = t.kind else {
                        return Err(self.err("expected string literal after 'doc'"));
                    };
                    self.expect(TokenKind::Semi, "';'")?;
                    doc = Some(s);
                }
                TokenKind::Nodes => {
                    self.bump();
                    self.expect(TokenKind::LBrace, "'{'")?;
                    while !self.check(&TokenKind::RBrace) {
                        let alias = self.ident("node alias")?;
                        self.expect(TokenKind::Assign, "'='")?;
                        let pe_name = self.ident("PE name")?;
                        self.expect(TokenKind::Semi, "';'")?;
                        nodes.push(NodeBinding { alias, pe_name });
                    }
                    self.expect(TokenKind::RBrace, "'}'")?;
                }
                TokenKind::Connect => {
                    self.bump();
                    let from_node = self.ident("source node")?;
                    self.expect(TokenKind::Dot, "'.'")?;
                    let from_port = self.ident("source port")?;
                    self.expect(TokenKind::Arrow, "'->'")?;
                    let to_node = self.ident("destination node")?;
                    self.expect(TokenKind::Dot, "'.'")?;
                    let to_port = self.ident("destination port")?;
                    self.expect(TokenKind::Semi, "';'")?;
                    connects.push(ConnectDecl { from_node, from_port, to_node, to_port });
                }
                _ => return Err(self.err("expected doc/nodes/connect in workflow body")),
            }
        }
        self.expect(TokenKind::RBrace, "'}'")?;
        Ok(WorkflowDecl { name, doc, nodes, connects })
    }

    // ---- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, ScriptError> {
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace, "'}'")?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        match &self.peek().kind {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(TokenKind::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi, "';' after let")?;
                Ok(Stmt::Let { name, value })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(TokenKind::In, "'in'")?;
                let iter = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For { var, iter, body })
            }
            TokenKind::Return => {
                self.bump();
                if self.eat(&TokenKind::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::Semi, "';' after return")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Continue)
            }
            TokenKind::Emit => {
                self.bump();
                self.expect(TokenKind::LParen, "'(' after emit")?;
                let first = self.expr()?;
                let stmt = if self.eat(&TokenKind::Comma) {
                    let value = self.expr()?;
                    // Two-argument form: the port must be a static string.
                    let Expr::Str(port) = first else {
                        return Err(self.err("emit(port, value) requires a string literal port name"));
                    };
                    Stmt::EmitTo { port, value }
                } else {
                    Stmt::Emit(first)
                };
                self.expect(TokenKind::RParen, "')'")?;
                self.expect(TokenKind::Semi, "';' after emit")?;
                Ok(stmt)
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    if !e.is_lvalue() {
                        return Err(self.err("invalid assignment target"));
                    }
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi, "';' after assignment")?;
                    Ok(Stmt::Assign { target: e, value })
                } else {
                    self.expect(TokenKind::Semi, "';' after expression")?;
                    Ok(Stmt::ExprStmt(e))
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.expect(TokenKind::If, "'if'")?;
        let cond = self.expr()?;
        let then_block = self.block()?;
        let else_block = if self.eat(&TokenKind::Else) {
            if self.check(&TokenKind::If) {
                // else-if chain desugars to a nested single-statement block.
                let nested = self.if_stmt()?;
                Some(Block { stmts: vec![nested] })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If { cond, then_block, else_block })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.and_expr()?;
        while self.check(&TokenKind::Or) {
            let line = self.bump().line;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.not_expr()?;
        while self.check(&TokenKind::And) {
            let line = self.bump().line;
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ScriptError> {
        if self.check(&TokenKind::Not) {
            let line = self.bump().line;
            let operand = self.not_expr()?;
            Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(operand), line })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            let line = self.bump().line;
            let rhs = self.additive()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn additive(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.bump().line;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let line = self.bump().line;
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        if self.check(&TokenKind::Minus) {
            let line = self.bump().line;
            let operand = self.unary()?;
            Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(operand), line })
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().kind {
                TokenKind::LParen => {
                    let line = self.bump().line;
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen, "')'")?;
                    e = match e {
                        Expr::Var { name, .. } => Expr::Call { module: None, name, args, line },
                        Expr::Field { base, field, .. } => match *base {
                            Expr::Var { name: module, .. } => {
                                Expr::Call { module: Some(module), name: field, args, line }
                            }
                            _ => return Err(self.err("only `f(..)` and `module.f(..)` calls are supported")),
                        },
                        _ => return Err(self.err("this expression is not callable")),
                    };
                }
                TokenKind::LBracket => {
                    let line = self.bump().line;
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket, "']'")?;
                    e = Expr::Index { base: Box::new(e), index: Box::new(index), line };
                }
                TokenKind::Dot => {
                    let line = self.bump().line;
                    let field = self.ident("field name")?;
                    e = Expr::Field { base: Box::new(e), field, line };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Float(f))
            }
            TokenKind::Str(ref s) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null)
            }
            TokenKind::Ident(ref name) => {
                let name = name.clone();
                self.bump();
                Ok(Expr::Var { name, line: t.line })
            }
            // `input` is a keyword but also the conventional datum variable.
            TokenKind::Input => {
                self.bump();
                Ok(Expr::Var { name: "input".into(), line: t.line })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket, "']'")?;
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut pairs = Vec::new();
                if !self.check(&TokenKind::RBrace) {
                    loop {
                        let key = match self.peek().kind.clone() {
                            TokenKind::Str(s) => {
                                self.bump();
                                s
                            }
                            TokenKind::Ident(s) => {
                                self.bump();
                                s
                            }
                            _ => return Err(self.err("expected map key (string or identifier)")),
                        };
                        self.expect(TokenKind::Colon, "':' after map key")?;
                        let v = self.expr()?;
                        pairs.push((key, v));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBrace, "'}'")?;
                Ok(Expr::MapLit(pairs))
            }
            _ => Err(self.err(format!("unexpected token {:?} in expression", t.kind))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 == 7 and not false").unwrap();
        // Must parse as ((1 + (2*3)) == 7) and (not false)
        let Expr::Binary { op: BinOp::And, lhs, rhs, .. } = e else {
            panic!("top must be `and`");
        };
        assert!(matches!(*lhs, Expr::Binary { op: BinOp::Eq, .. }));
        assert!(matches!(*rhs, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn calls_and_postfix() {
        let e = parse_expr("math.sqrt(x[0].field + len(xs))").unwrap();
        let Expr::Call { module, name, args, .. } = e else { panic!("call expected") };
        assert_eq!(module.as_deref(), Some("math"));
        assert_eq!(name, "sqrt");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn literals() {
        assert_eq!(
            parse_expr("[1, 2.5, \"a\"]").unwrap(),
            Expr::List(vec![Expr::Int(1), Expr::Float(2.5), Expr::Str("a".into()),])
        );
        let m = parse_expr("{\"a\": 1, b: 2}").unwrap();
        let Expr::MapLit(pairs) = m else { panic!() };
        assert_eq!(pairs[0].0, "a");
        assert_eq!(pairs[1].0, "b");
    }

    #[test]
    fn full_pe_parses() {
        let src = r#"
            pe IsPrime : iterative {
                doc "Checks if the given input is prime";
                import math;
                input num;
                output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num {
                        if num % i == 0 { prime = false; break; }
                        i = i + 1;
                    }
                    if prime { emit(num); }
                }
            }
        "#;
        let script = parse_script(src).unwrap();
        let pe = script.pe("IsPrime").unwrap();
        assert_eq!(pe.kind, PeKind::Iterative);
        assert_eq!(pe.doc.as_deref(), Some("Checks if the given input is prime"));
        assert_eq!(pe.imports, vec![vec!["math".to_string()]]);
        assert_eq!(pe.inputs[0].name, "num");
        assert_eq!(pe.outputs, vec!["output"]);
        assert!(!pe.is_stateful());
    }

    #[test]
    fn stateful_pe_with_groupby() {
        let src = r#"
            pe CountWords : generic {
                input input groupby 0;
                output output;
                init { state.count = {}; }
                process {
                    let word = input[0];
                    state.count[word] = get(state.count, word, 0) + input[1];
                    emit([word, state.count[word]]);
                }
            }
        "#;
        let pe_script = parse_script(src).unwrap();
        let pe = pe_script.pe("CountWords").unwrap();
        assert_eq!(pe.inputs[0].groupby, Some(0));
        assert!(pe.is_stateful());
    }

    #[test]
    fn workflow_decl_parses() {
        let src = r#"
            workflow IsPrime {
                doc "Streams random numbers and prints the primes";
                nodes { p = NumberProducer; i = IsPrime; pr = PrintPrime; }
                connect p.output -> i.num;
                connect i.output -> pr.input;
            }
        "#;
        let s = parse_script(src).unwrap();
        let w = s.workflows().next().unwrap();
        assert_eq!(w.name, "IsPrime");
        assert_eq!(w.nodes.len(), 3);
        assert_eq!(w.connects.len(), 2);
        assert_eq!(w.connects[0].from_node, "p");
        assert_eq!(w.connects[0].to_port, "num");
    }

    #[test]
    fn archetype_shapes_enforced() {
        // Producer with an input port is rejected.
        let bad = "pe P : producer { input x; output output; process { emit(1); } }";
        assert!(parse_script(bad).is_err());
        // Consumer with an output is rejected.
        let bad = "pe C : consumer { input x; output y; process { emit(1); } }";
        assert!(parse_script(bad).is_err());
        // Iterative needs both.
        let bad = "pe I : iterative { input x; process { } }";
        assert!(parse_script(bad).is_err());
        // Missing process block.
        let bad = "pe P : producer { output output; }";
        assert!(parse_script(bad).is_err());
    }

    #[test]
    fn emit_forms() {
        let src = r#"
            pe Fan : generic {
                input input;
                output big;
                output small;
                process {
                    if input > 10 { emit("big", input); } else { emit("small", input); }
                }
            }
        "#;
        let s = parse_script(src).unwrap();
        let pe = s.pe("Fan").unwrap();
        assert_eq!(pe.outputs.len(), 2);
        // emit with non-literal port is rejected
        let bad = r#"pe X : generic { input input; output o; process { emit(p, 1); } }"#;
        assert!(parse_script(bad).is_err());
    }

    #[test]
    fn else_if_chains() {
        let src = "fn f(x) { if x > 2 { return 2; } else if x > 1 { return 1; } else { return 0; } }";
        let s = parse_script(src).unwrap();
        let Item::Fn(f) = &s.items[0] else { panic!() };
        let Stmt::If { else_block: Some(e), .. } = &f.body.stmts[0] else { panic!() };
        assert!(matches!(e.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn assignment_targets() {
        let src = "fn f() { state.count[0].x = 1; }";
        assert!(parse_script(src).is_ok());
        let bad = "fn f() { f(1) = 2; }";
        assert!(parse_script(bad).is_err());
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_script("pe X : iterative {\n  input a\n}").unwrap_err();
        assert!(e.line >= 2, "error line was {}", e.line);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_expr("1 + 2 extra").is_err());
    }
}
