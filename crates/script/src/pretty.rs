//! Canonical source printer.
//!
//! The registry stores PE code in this canonical form so that formatting
//! differences do not perturb the embedding models. The invariant pinned by
//! property tests: `parse(to_source(parse(src)))` equals `parse(src)`.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole script in canonical form.
pub fn to_source(script: &Script) -> String {
    let mut out = String::new();
    for (i, item) in script.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Import(path) => {
                let _ = writeln!(out, "import {};", path.join("."));
            }
            Item::Fn(f) => print_fn(&mut out, f),
            Item::Pe(p) => print_pe(&mut out, p),
            Item::Workflow(w) => print_workflow(&mut out, w),
        }
    }
    out
}

fn print_fn(out: &mut String, f: &FnDecl) {
    let _ = write!(out, "fn {}({}) ", f.name, f.params.join(", "));
    print_block(out, &f.body, 0);
    out.push('\n');
}

fn print_pe(out: &mut String, p: &PeDecl) {
    let _ = writeln!(out, "pe {} : {} {{", p.name, p.kind.as_str());
    if let Some(doc) = &p.doc {
        let _ = writeln!(out, "    doc {};", quote(doc));
    }
    for imp in &p.imports {
        let _ = writeln!(out, "    import {};", imp.join("."));
    }
    for port in &p.inputs {
        match port.groupby {
            Some(k) => {
                let _ = writeln!(out, "    input {} groupby {};", port.name, k);
            }
            None => {
                let _ = writeln!(out, "    input {};", port.name);
            }
        }
    }
    for o in &p.outputs {
        let _ = writeln!(out, "    output {};", o);
    }
    if let Some(init) = &p.init {
        out.push_str("    init ");
        print_block(out, init, 1);
        out.push('\n');
    }
    out.push_str("    process ");
    print_block(out, &p.process, 1);
    out.push_str("\n}\n");
}

fn print_workflow(out: &mut String, w: &WorkflowDecl) {
    let _ = writeln!(out, "workflow {} {{", w.name);
    if let Some(doc) = &w.doc {
        let _ = writeln!(out, "    doc {};", quote(doc));
    }
    if !w.nodes.is_empty() {
        out.push_str("    nodes {");
        for n in &w.nodes {
            let _ = write!(out, " {} = {};", n.alias, n.pe_name);
        }
        out.push_str(" }\n");
    }
    for c in &w.connects {
        let _ = writeln!(out, "    connect {}.{} -> {}.{};", c.from_node, c.from_port, c.to_node, c.to_port);
    }
    out.push_str("}\n");
}

fn print_block(out: &mut String, b: &Block, level: usize) {
    if b.stmts.is_empty() {
        out.push_str("{ }");
        return;
    }
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Let { name, value } => {
            let _ = writeln!(out, "let {} = {};", name, expr_src(value));
        }
        Stmt::Assign { target, value } => {
            let _ = writeln!(out, "{} = {};", expr_src(target), expr_src(value));
        }
        Stmt::If { cond, then_block, else_block } => {
            let _ = write!(out, "if {} ", expr_src(cond));
            print_block(out, then_block, level);
            if let Some(e) = else_block {
                out.push_str(" else ");
                print_block(out, e, level);
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "while {} ", expr_src(cond));
            print_block(out, body, level);
            out.push('\n');
        }
        Stmt::For { var, iter, body } => {
            let _ = write!(out, "for {} in {} ", var, expr_src(iter));
            print_block(out, body, level);
            out.push('\n');
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_src(e));
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
        Stmt::Emit(e) => {
            let _ = writeln!(out, "emit({});", expr_src(e));
        }
        Stmt::EmitTo { port, value } => {
            let _ = writeln!(out, "emit({}, {});", quote(port), expr_src(value));
        }
        Stmt::ExprStmt(e) => {
            let _ = writeln!(out, "{};", expr_src(e));
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an expression in source form. Parenthesizes conservatively: every
/// nested binary operand is wrapped, which keeps the printer simple and the
/// output unambiguous (round-trip stability is what matters, not minimal
/// parentheses).
pub fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Float(f) => {
            let s = format!("{f}");
            if s.contains(['.', 'e', 'E']) {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Str(s) => quote(s),
        Expr::Bool(true) => "true".into(),
        Expr::Bool(false) => "false".into(),
        Expr::Null => "null".into(),
        Expr::Var { name, .. } => name.clone(),
        Expr::List(items) => {
            let inner: Vec<String> = items.iter().map(expr_src).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::MapLit(pairs) => {
            let inner: Vec<String> =
                pairs.iter().map(|(k, v)| format!("{}: {}", quote(k), expr_src(v))).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {} {}", operand_src(lhs), op.as_str(), operand_src(rhs))
        }
        Expr::Unary { op, operand, .. } => match op {
            UnOp::Neg => format!("-{}", operand_src(operand)),
            UnOp::Not => format!("not {}", operand_src(operand)),
        },
        Expr::Call { module, name, args, .. } => {
            let inner: Vec<String> = args.iter().map(expr_src).collect();
            match module {
                Some(m) => format!("{m}.{name}({})", inner.join(", ")),
                None => format!("{name}({})", inner.join(", ")),
            }
        }
        Expr::Index { base, index, .. } => format!("{}[{}]", operand_src(base), expr_src(index)),
        Expr::Field { base, field, .. } => format!("{}.{}", operand_src(base), field),
    }
}

fn operand_src(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Unary { .. } => format!("({})", expr_src(e)),
        _ => expr_src(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    const SAMPLE: &str = r#"
        import astropy.io;
        fn is_even(n) { return n % 2 == 0; }
        pe CountWords : generic {
            doc "Counts words, MapReduce style";
            import collections;
            input input groupby 0;
            output output;
            init { state.count = {}; }
            process {
                let word = input[0];
                state.count[word] = get(state.count, word, 0) + input[1];
                if is_even(state.count[word]) { emit([word, state.count[word]]); }
                emit("output", -1);
            }
        }
        workflow WC {
            doc "word count";
            nodes { src = Reader; cnt = CountWords; }
            connect src.output -> cnt.input;
        }
    "#;

    #[test]
    fn round_trip_fixed_point() {
        let ast1 = parse_script(SAMPLE).unwrap();
        let src1 = to_source(&ast1);
        let ast2 = parse_script(&src1).expect("canonical source must re-parse");
        // ASTs are compared via their canonical rendering, which erases the
        // line-number bookkeeping that legitimately differs.
        assert_eq!(to_source(&ast2), src1, "printer must be a fixed point");
    }

    #[test]
    fn precedence_preserved() {
        let src = "fn f(a, b, c) { return a + b * c; }";
        let ast = parse_script(src).unwrap();
        let printed = to_source(&ast);
        assert!(printed.contains("a + (b * c)"), "printed: {printed}");
        let back = parse_script(&printed).unwrap();
        assert_eq!(to_source(&back), printed);
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        let src = "fn f() { return 3.0; }";
        let ast = parse_script(src).unwrap();
        let back = parse_script(&to_source(&ast)).unwrap();
        assert_eq!(to_source(&back), to_source(&ast));
        assert!(to_source(&ast).contains("3.0"));
    }

    #[test]
    fn doc_strings_escaped() {
        let src =
            r#"pe X : producer { doc "has \"quotes\" and \n newline"; output o; process { emit(1); } }"#;
        let ast = parse_script(src).unwrap();
        let back = parse_script(&to_source(&ast)).unwrap();
        assert_eq!(to_source(&back), to_source(&ast));
    }
}
