//! Tree-walking interpreter for LamScript.
//!
//! Executes PE `process` bodies against a datum, an instance state object and
//! an output [`Sink`]. Execution is *fuel-bounded*: every statement and
//! operator costs one unit, so a hostile or buggy PE cannot hang the
//! serverless engine.

use crate::ast::*;
use crate::builtins;
use crate::error::{ErrorKind, ScriptError};
use laminar_json::{Map, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Where `emit(...)` and `print(...)` output goes.
pub trait Sink {
    /// Datum emitted on an output port.
    fn emit(&mut self, port: &str, value: Value);
    /// A `print(...)` line. Default: stdout.
    fn print(&mut self, text: &str) {
        println!("{text}");
    }
}

/// Sink that records everything, used by tests and the engine's output
/// capture (the paper's Figure 9 shows engine stdout forwarded to the
/// client).
///
/// Port names are interned as `Arc<str>`: a PE has a handful of ports but
/// emits millions of data, so per-emit `String` allocation was pure waste.
#[derive(Debug, Default)]
pub struct VecSink {
    /// `(port, value)` pairs in emission order.
    pub emitted: Vec<(Arc<str>, Value)>,
    /// Captured print lines.
    pub printed: Vec<String>,
    /// Interned port names (linear scan; port counts are tiny).
    names: Vec<Arc<str>>,
}

impl VecSink {
    /// Intern `port`, cloning the backing allocation only on first sight.
    fn intern(&mut self, port: &str) -> Arc<str> {
        match self.names.iter().find(|n| &***n == port) {
            Some(n) => Arc::clone(n),
            None => {
                let n: Arc<str> = Arc::from(port);
                self.names.push(Arc::clone(&n));
                n
            }
        }
    }

    /// Emissions as owned `(port, value)` pairs — convenience for tests
    /// that predate the interned representation.
    pub fn port_values(&self) -> Vec<(String, Value)> {
        self.emitted.iter().map(|(p, v)| (p.to_string(), v.clone())).collect()
    }
}

impl Sink for VecSink {
    fn emit(&mut self, port: &str, value: Value) {
        let port = self.intern(port);
        self.emitted.push((port, value));
    }
    fn print(&mut self, text: &str) {
        self.printed.push(text.to_string());
    }
}

/// Host-function provider: dotted calls (`vo.fetch(...)`) that are not
/// builtin modules are routed here. The engine and workloads install hosts
/// to expose simulated external services.
pub trait Host {
    /// Invoke `module.name(args)`.
    fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError>;
}

/// Host that knows no functions; dotted calls fail with `NameError`.
pub struct NullHost;

impl Host for NullHost {
    fn call(&self, module: &str, name: &str, _args: &[Value]) -> Result<Value, ScriptError> {
        Err(ScriptError::new(
            ErrorKind::NameError,
            format!("no host function '{module}.{name}' is available"),
        ))
    }
}

/// Default fuel budget per `process` invocation.
pub const DEFAULT_FUEL: u64 = 2_000_000;
/// Maximum user-function call depth.
pub const MAX_CALL_DEPTH: usize = 128;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An interpreter bound to a script's function table.
///
/// Fully owned (`'static` + `Send`): PE instances hold one across process
/// calls so that RNG state and fuel accounting persist per instance.
pub struct Interp {
    funcs: HashMap<String, FnDecl>,
    host: Arc<dyn Host + Send + Sync>,
    fuel: u64,
    fuel_limit: u64,
    rng: StdRng,
}

impl Interp {
    /// Build an interpreter for `script` with the given host.
    pub fn new(script: &Script, host: Arc<dyn Host + Send + Sync>) -> Self {
        let mut funcs = HashMap::new();
        for item in &script.items {
            if let Item::Fn(f) = item {
                funcs.insert(f.name.clone(), f.clone());
            }
        }
        Interp {
            funcs,
            host,
            fuel: DEFAULT_FUEL,
            fuel_limit: DEFAULT_FUEL,
            rng: StdRng::seed_from_u64(0x1a31_4a12),
        }
    }

    /// Override the per-invocation fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_limit = fuel;
        self.fuel = fuel;
        self
    }

    /// Seed the RNG (tests and reproducible benchmarks).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Fuel left after the last invocation (differential testing against
    /// the bytecode VM).
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// Current RNG state, for checkpointing. The state word plus the
    /// PE's `state.*` value is the interpreter's entire cross-invocation
    /// footprint (fuel resets per invocation).
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restore an RNG state captured by [`Interp::rng_state`].
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng.set_state(state);
    }

    /// Run a PE's `init` block against `state`.
    pub fn run_init(
        &mut self,
        pe: &PeDecl,
        state: &mut Value,
        sink: &mut dyn Sink,
    ) -> Result<(), ScriptError> {
        if state.is_null() {
            // Instance state is always an object, like a fresh Python
            // instance's attribute dict.
            *state = Value::Object(Map::new());
        }
        let Some(init) = &pe.init else { return Ok(()) };
        self.fuel = self.fuel_limit;
        let mut env = Env::new();
        env.define("state", std::mem::take(state));
        let flow = self.exec_block(init, &mut env, sink, 0)?;
        *state = env.take("state").unwrap_or(Value::Null);
        if let Flow::Return(_) = flow {
            // `return` in init is tolerated and ignored.
        }
        Ok(())
    }

    /// Run one `process` invocation.
    ///
    /// * `input` — the datum (None for producers).
    /// * `input_port` — which port the datum arrived on (None for producers
    ///   or when the caller doesn't track ports); the datum is also bound to
    ///   a variable with the port's name, mirroring dispel4py's
    ///   `_process(self, <port>)` convention.
    /// * `iteration` — producer iteration counter, exposed as `iteration`.
    /// * `state` — instance state object, mutated in place.
    ///
    /// Returns the `return` value if the body returned one; in dispel4py a
    /// returned value is shorthand for writing it to the default output, and
    /// the PE adapter layer applies that rule.
    pub fn run_process(
        &mut self,
        pe: &PeDecl,
        input: Option<Value>,
        input_port: Option<&str>,
        iteration: i64,
        state: &mut Value,
        sink: &mut dyn Sink,
    ) -> Result<Option<Value>, ScriptError> {
        self.fuel = self.fuel_limit;
        if state.is_null() {
            *state = Value::Object(Map::new());
        }
        let mut env = Env::new();
        env.define("state", std::mem::take(state));
        let datum = input.unwrap_or(Value::Null);
        // The datum is visible both as `input` and under the port's name.
        let port_var = input_port.map(str::to_string).or_else(|| pe.default_input().map(str::to_string));
        if let Some(pv) = port_var {
            if pv != "input" {
                env.define(&pv, datum.clone());
            }
        }
        env.define("input", datum);
        env.define("input_port", input_port.map(Value::from).unwrap_or(Value::Null));
        env.define("iteration", Value::Int(iteration));
        let mut ctx =
            PeCtx { default_output: pe.default_output().map(str::to_string), outputs: pe.outputs.clone() };
        let flow = self.exec_block_pe(&pe.process, &mut env, sink, &mut ctx, 0)?;
        *state = env.take("state").unwrap_or(Value::Null);
        Ok(match flow {
            Flow::Return(v) if !v.is_null() => Some(v),
            _ => None,
        })
    }

    /// Evaluate a standalone expression with pre-bound variables. Used by
    /// tests and by the registry's `describe` tooling.
    pub fn eval_expr(&mut self, expr: &Expr, vars: &[(&str, Value)]) -> Result<Value, ScriptError> {
        self.fuel = self.fuel_limit;
        let mut env = Env::new();
        for (k, v) in vars {
            env.define(k, v.clone());
        }
        let mut sink = VecSink::default();
        self.eval(expr, &mut env, &mut sink, 0)
    }

    // ---- execution -----------------------------------------------------

    fn burn(&mut self, line: usize) -> Result<(), ScriptError> {
        if self.fuel == 0 {
            return Err(ScriptError::at(
                ErrorKind::FuelExhausted,
                format!("fuel budget of {} exhausted", self.fuel_limit),
                line,
                0,
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        block: &Block,
        env: &mut Env,
        sink: &mut dyn Sink,
        depth: usize,
    ) -> Result<Flow, ScriptError> {
        let mut ctx = PeCtx { default_output: None, outputs: vec![] };
        self.exec_block_pe(block, env, sink, &mut ctx, depth)
    }

    fn exec_block_pe(
        &mut self,
        block: &Block,
        env: &mut Env,
        sink: &mut dyn Sink,
        ctx: &mut PeCtx,
        depth: usize,
    ) -> Result<Flow, ScriptError> {
        env.push();
        let result = self.exec_stmts(&block.stmts, env, sink, ctx, depth);
        env.pop();
        result
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        sink: &mut dyn Sink,
        ctx: &mut PeCtx,
        depth: usize,
    ) -> Result<Flow, ScriptError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, env, sink, ctx, depth)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        sink: &mut dyn Sink,
        ctx: &mut PeCtx,
        depth: usize,
    ) -> Result<Flow, ScriptError> {
        self.burn(0)?;
        match stmt {
            Stmt::Let { name, value } => {
                let v = self.eval_in(value, env, sink, ctx, depth)?;
                env.define(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval_in(value, env, sink, ctx, depth)?;
                self.assign(target, v, env, sink, ctx, depth)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_block, else_block } => {
                let c = self.eval_in(cond, env, sink, ctx, depth)?;
                if truthy(&c) {
                    self.exec_block_pe(then_block, env, sink, ctx, depth)
                } else if let Some(e) = else_block {
                    self.exec_block_pe(e, env, sink, ctx, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.burn(0)?;
                    let c = self.eval_in(cond, env, sink, ctx, depth)?;
                    if !truthy(&c) {
                        break;
                    }
                    match self.exec_block_pe(body, env, sink, ctx, depth)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body } => {
                let seq = self.eval_in(iter, env, sink, ctx, depth)?;
                let items: Vec<Value> = match seq {
                    Value::Array(a) => a,
                    Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                    Value::Object(m) => m.into_keys().map(Value::Str).collect(),
                    other => {
                        return Err(ScriptError::new(
                            ErrorKind::TypeError,
                            format!("cannot iterate over {}", other.type_name()),
                        ))
                    }
                };
                for item in items {
                    self.burn(0)?;
                    env.push();
                    env.define(var, item);
                    let flow = self.exec_stmts(&body.stmts, env, sink, ctx, depth);
                    env.pop();
                    match flow? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval_in(e, env, sink, ctx, depth)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Emit(e) => {
                let v = self.eval_in(e, env, sink, ctx, depth)?;
                let port = ctx.default_output.clone().ok_or_else(|| {
                    ScriptError::new(ErrorKind::ContextError, "emit() used in a PE without output ports")
                })?;
                sink.emit(&port, v);
                Ok(Flow::Normal)
            }
            Stmt::EmitTo { port, value } => {
                if !ctx.outputs.iter().any(|p| p == port) {
                    return Err(ScriptError::new(
                        ErrorKind::ContextError,
                        format!("emit to undeclared output port '{port}'"),
                    ));
                }
                let v = self.eval_in(value, env, sink, ctx, depth)?;
                sink.emit(port, v);
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt(e) => {
                self.eval_in(e, env, sink, ctx, depth)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(
        &mut self,
        target: &Expr,
        value: Value,
        env: &mut Env,
        sink: &mut dyn Sink,
        ctx: &mut PeCtx,
        depth: usize,
    ) -> Result<(), ScriptError> {
        // Resolve the accessor path (indices / fields) down to the root var.
        enum Acc {
            Index(Value),
            Field(String),
        }
        let mut accs: Vec<Acc> = Vec::new();
        let mut cur = target;
        let root = loop {
            match cur {
                Expr::Var { name, .. } => break name.clone(),
                Expr::Index { base, index, .. } => {
                    let idx = self.eval_in(index, env, sink, ctx, depth)?;
                    accs.push(Acc::Index(idx));
                    cur = base;
                }
                Expr::Field { base, field, .. } => {
                    accs.push(Acc::Field(field.clone()));
                    cur = base;
                }
                _ => return Err(ScriptError::new(ErrorKind::TypeError, "invalid assignment target")),
            }
        };
        accs.reverse();
        let slot = env.lookup_mut(&root).ok_or_else(|| {
            ScriptError::new(ErrorKind::NameError, format!("assignment to undefined variable '{root}'"))
        })?;
        let mut place: &mut Value = slot;
        for acc in &accs {
            match acc {
                Acc::Field(f) => {
                    if place.is_null() {
                        *place = Value::Object(Map::new());
                    }
                    let m = place.as_object_mut().ok_or_else(|| {
                        ScriptError::new(
                            ErrorKind::TypeError,
                            format!("cannot set field '{f}' on non-object"),
                        )
                    })?;
                    place = m.entry(f.clone()).or_insert(Value::Null);
                }
                Acc::Index(idx) => {
                    if place.is_null() && matches!(idx, Value::Str(_)) {
                        *place = Value::Object(Map::new());
                    }
                    match (&mut *place, idx) {
                        (Value::Object(m), key) => {
                            let k = match key {
                                Value::Str(s) => s.clone(),
                                other => other.to_string(),
                            };
                            place = m.entry(k).or_insert(Value::Null);
                        }
                        (Value::Array(a), Value::Int(i)) => {
                            let len = a.len() as i64;
                            let real = if *i < 0 { *i + len } else { *i };
                            if real < 0 || real >= len {
                                return Err(ScriptError::new(
                                    ErrorKind::IndexError,
                                    format!("list index {i} out of range (len {len})"),
                                ));
                            }
                            place = &mut a[real as usize];
                        }
                        (other, idx) => {
                            return Err(ScriptError::new(
                                ErrorKind::TypeError,
                                format!("cannot index {} with {}", other.type_name(), idx.type_name()),
                            ))
                        }
                    }
                }
            }
        }
        *place = value;
        Ok(())
    }

    fn eval_in(
        &mut self,
        expr: &Expr,
        env: &mut Env,
        sink: &mut dyn Sink,
        ctx: &mut PeCtx,
        depth: usize,
    ) -> Result<Value, ScriptError> {
        // PeCtx flows through so user functions can't emit (matching
        // dispel4py, where only _process writes to ports) — but print works.
        let _ = ctx;
        self.eval(expr, env, sink, depth)
    }

    fn eval(
        &mut self,
        expr: &Expr,
        env: &mut Env,
        sink: &mut dyn Sink,
        depth: usize,
    ) -> Result<Value, ScriptError> {
        self.burn(expr.line())?;
        match expr {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Float(f) => Ok(Value::Float(*f)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Var { name, line } => env.lookup(name).cloned().ok_or_else(|| {
                ScriptError::at(ErrorKind::NameError, format!("undefined variable '{name}'"), *line, 0)
            }),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, env, sink, depth)?);
                }
                Ok(Value::Array(out))
            }
            Expr::MapLit(pairs) => {
                let mut m = Map::new();
                for (k, e) in pairs {
                    m.insert(k.clone(), self.eval(e, env, sink, depth)?);
                }
                Ok(Value::Object(m))
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.eval(operand, env, sink, depth)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(ScriptError::new(
                            ErrorKind::TypeError,
                            format!("cannot negate {}", other.type_name()),
                        )),
                    },
                    UnOp::Not => Ok(Value::Bool(!truthy(&v))),
                }
            }
            Expr::Binary { op, lhs, rhs, line } => self.eval_binary(*op, lhs, rhs, *line, env, sink, depth),
            Expr::Index { base, index, .. } => {
                let b = self.eval(base, env, sink, depth)?;
                let i = self.eval(index, env, sink, depth)?;
                index_value(&b, &i)
            }
            Expr::Field { base, field, line } => {
                let b = self.eval(base, env, sink, depth)?;
                match b {
                    Value::Object(m) => Ok(m.get(field).cloned().unwrap_or(Value::Null)),
                    other => Err(ScriptError::at(
                        ErrorKind::TypeError,
                        format!("cannot access field '{field}' on {}", other.type_name()),
                        *line,
                        0,
                    )),
                }
            }
            Expr::Call { module, name, args, line } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env, sink, depth)?);
                }
                self.call(module.as_deref(), name, argv, *line, sink, depth)
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors eval()'s threading of interpreter context
    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: usize,
        env: &mut Env,
        sink: &mut dyn Sink,
        depth: usize,
    ) -> Result<Value, ScriptError> {
        // Short-circuit logical operators.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs, env, sink, depth)?;
            let lt = truthy(&l);
            return if (op == BinOp::And && !lt) || (op == BinOp::Or && lt) {
                Ok(Value::Bool(lt))
            } else {
                let r = self.eval(rhs, env, sink, depth)?;
                Ok(Value::Bool(truthy(&r)))
            };
        }
        let l = self.eval(lhs, env, sink, depth)?;
        let r = self.eval(rhs, env, sink, depth)?;
        binary_op(op, &l, &r, line)
    }

    fn call(
        &mut self,
        module: Option<&str>,
        name: &str,
        args: Vec<Value>,
        line: usize,
        sink: &mut dyn Sink,
        depth: usize,
    ) -> Result<Value, ScriptError> {
        // 1. print is special: it writes to the sink.
        if module.is_none() && name == "print" {
            let text = args.iter().map(display_value).collect::<Vec<_>>().join(" ");
            sink.print(&text);
            return Ok(Value::Null);
        }
        // 2. random builtins consume the interpreter RNG.
        if module.is_none() || module == Some("random") {
            match name {
                "randint" => {
                    let (a, b) = builtins::two_ints(&args, "randint")?;
                    if a > b {
                        return Err(ScriptError::new(ErrorKind::ArgumentError, "randint: empty range"));
                    }
                    return Ok(Value::Int(self.rng.random_range(a..=b)));
                }
                "random" => {
                    if !args.is_empty() {
                        return Err(ScriptError::new(
                            ErrorKind::ArgumentError,
                            "random() takes no arguments",
                        ));
                    }
                    return Ok(Value::Float(self.rng.random::<f64>()));
                }
                "shuffle" => {
                    let [Value::Array(a)] = &args[..] else {
                        return Err(ScriptError::new(ErrorKind::ArgumentError, "shuffle(list)"));
                    };
                    let mut a = a.clone();
                    // Fisher-Yates with the interpreter RNG.
                    for i in (1..a.len()).rev() {
                        let j = self.rng.random_range(0..=i);
                        a.swap(i, j);
                    }
                    return Ok(Value::Array(a));
                }
                _ => {}
            }
        }
        // 3. user functions (plain calls only).
        if module.is_none() {
            if let Some(f) = self.funcs.get(name).cloned() {
                if depth + 1 > MAX_CALL_DEPTH {
                    return Err(ScriptError::at(ErrorKind::StackOverflow, "call depth exceeded", line, 0));
                }
                if f.params.len() != args.len() {
                    return Err(ScriptError::at(
                        ErrorKind::ArgumentError,
                        format!("{name}() expects {} arguments, got {}", f.params.len(), args.len()),
                        line,
                        0,
                    ));
                }
                let mut env = Env::new();
                for (p, v) in f.params.iter().zip(args) {
                    env.define(p, v);
                }
                let flow = self.exec_block(&f.body, &mut env, sink, depth + 1)?;
                return Ok(match flow {
                    Flow::Return(v) => v,
                    _ => Value::Null,
                });
            }
        }
        // 4. builtin table.
        if let Some(result) = builtins::call(module, name, &args) {
            return result.map_err(|mut e| {
                if e.line == 0 {
                    e.line = line;
                }
                e
            });
        }
        // 5. host functions (simulated external libraries/services).
        if let Some(m) = module {
            return self.host.call(m, name, &args);
        }
        Err(ScriptError::at(ErrorKind::NameError, format!("unknown function '{name}'"), line, 0))
    }
}

struct PeCtx {
    default_output: Option<String>,
    outputs: Vec<String>,
}

/// Lexically-scoped variable environment.
struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    fn new() -> Self {
        Env { scopes: vec![HashMap::new()] }
    }
    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }
    fn pop(&mut self) {
        self.scopes.pop();
    }
    fn define(&mut self, name: &str, v: Value) {
        self.scopes.last_mut().expect("at least one scope").insert(name.to_string(), v);
    }
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
    fn lookup_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }
    fn take(&mut self, name: &str) -> Option<Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.remove(name))
    }
}

/// Python-style truthiness.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Array(a) => !a.is_empty(),
        Value::Object(m) => !m.is_empty(),
    }
}

/// Equality with numeric coercion (`1 == 1.0`).
pub fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

pub(crate) fn display_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

pub(crate) fn index_value(base: &Value, index: &Value) -> Result<Value, ScriptError> {
    match (base, index) {
        (Value::Array(a), Value::Int(i)) => {
            let len = a.len() as i64;
            let real = if *i < 0 { *i + len } else { *i };
            a.get(real as usize).cloned().ok_or_else(|| {
                ScriptError::new(ErrorKind::IndexError, format!("list index {i} out of range (len {len})"))
            })
        }
        (Value::Str(s), Value::Int(i)) => {
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as i64;
            let real = if *i < 0 { *i + len } else { *i };
            chars.get(real as usize).map(|c| Value::Str(c.to_string())).ok_or_else(|| {
                ScriptError::new(ErrorKind::IndexError, format!("string index {i} out of range"))
            })
        }
        (Value::Object(m), Value::Str(k)) => Ok(m.get(k).cloned().unwrap_or(Value::Null)),
        (b, i) => Err(ScriptError::new(
            ErrorKind::TypeError,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

pub(crate) fn binary_op(op: BinOp, l: &Value, r: &Value, line: usize) -> Result<Value, ScriptError> {
    use BinOp::*;
    use Value::*;
    let type_err = |msg: String| ScriptError::at(ErrorKind::TypeError, msg, line, 0);
    match op {
        Add => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            (Array(a), Array(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Array(out))
            }
            _ => num_op(l, r, |a, b| a + b)
                .ok_or_else(|| type_err(format!("cannot add {} and {}", l.type_name(), r.type_name()))),
        },
        Sub => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_sub(*b))),
            _ => num_op(l, r, |a, b| a - b)
                .ok_or_else(|| type_err(format!("cannot subtract {} from {}", r.type_name(), l.type_name()))),
        },
        Mul => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_mul(*b))),
            (Str(s), Int(n)) | (Int(n), Str(s)) => {
                if *n < 0 || *n > 1_000_000 {
                    return Err(type_err("string repetition count out of range".into()));
                }
                Ok(Str(s.repeat(*n as usize)))
            }
            _ => num_op(l, r, |a, b| a * b)
                .ok_or_else(|| type_err(format!("cannot multiply {} and {}", l.type_name(), r.type_name()))),
        },
        Div => match (l, r) {
            (Int(_), Int(0)) => {
                Err(ScriptError::at(ErrorKind::DivisionByZero, "integer division by zero", line, 0))
            }
            (Int(a), Int(b)) => Ok(Int(a.wrapping_div(*b))),
            _ => {
                let v = num_op(l, r, |a, b| a / b).ok_or_else(|| {
                    type_err(format!("cannot divide {} by {}", l.type_name(), r.type_name()))
                })?;
                match v {
                    Float(f) if f.is_nan() || f.is_infinite() => {
                        Err(ScriptError::at(ErrorKind::DivisionByZero, "float division by zero", line, 0))
                    }
                    ok => Ok(ok),
                }
            }
        },
        Mod => match (l, r) {
            (Int(_), Int(0)) => Err(ScriptError::at(ErrorKind::DivisionByZero, "modulo by zero", line, 0)),
            (Int(a), Int(b)) => Ok(Int(a.rem_euclid(*b))),
            _ => Err(type_err(format!("cannot take {} modulo {}", l.type_name(), r.type_name()))),
        },
        Eq => Ok(Bool(value_eq(l, r))),
        Ne => Ok(Bool(!value_eq(l, r))),
        Lt | Le | Gt | Ge => {
            let ord = match (l, r) {
                (Int(a), Int(b)) => a.partial_cmp(b),
                (Str(a), Str(b)) => a.partial_cmp(b),
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => None,
                },
            }
            .ok_or_else(|| type_err(format!("cannot compare {} and {}", l.type_name(), r.type_name())))?;
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Bool(b))
        }
        And | Or => unreachable!("short-circuited earlier"),
    }
}

fn num_op(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Option<Value> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Some(Value::Float(f(a, b))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_script};
    use laminar_json::{jarr, jobj};
    use std::sync::Arc;

    fn eval(src: &str) -> Value {
        let script = Script { items: vec![] };
        let mut i = Interp::new(&script, Arc::new(NullHost));
        let e = parse_expr(src).unwrap();
        // Leak is fine in tests; alternative is threading lifetimes.
        i.eval_expr(&e, &[]).unwrap()
    }

    fn eval_err(src: &str) -> ScriptError {
        let script = Script { items: vec![] };
        let mut i = Interp::new(&script, Arc::new(NullHost));
        let e = parse_expr(src).unwrap();
        i.eval_expr(&e, &[]).unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval("10 / 3"), Value::Int(3));
        assert_eq!(eval("10.0 / 4"), Value::Float(2.5));
        assert_eq!(eval("10 % 3"), Value::Int(1));
        assert_eq!(eval("-5 % 3"), Value::Int(1)); // euclidean
        assert_eq!(eval("\"ab\" + \"cd\""), Value::Str("abcd".into()));
        assert_eq!(eval("\"ab\" * 3"), Value::Str("ababab".into()));
        assert_eq!(eval("[1] + [2, 3]"), jarr![1, 2, 3]);
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval("1 < 2"), Value::Bool(true));
        assert_eq!(eval("2.5 >= 2"), Value::Bool(true));
        assert_eq!(eval("\"a\" < \"b\""), Value::Bool(true));
        assert_eq!(eval("1 == 1.0"), Value::Bool(true));
        assert_eq!(eval("true and false"), Value::Bool(false));
        assert_eq!(eval("false or 1 == 1"), Value::Bool(true));
        assert_eq!(eval("not null"), Value::Bool(true));
    }

    #[test]
    fn short_circuit() {
        // rhs would divide by zero; short-circuit must skip it.
        assert_eq!(eval("false and 1 / 0 == 0"), Value::Bool(false));
        assert_eq!(eval("true or 1 / 0 == 0"), Value::Bool(true));
    }

    #[test]
    fn errors() {
        assert_eq!(eval_err("1 / 0").kind, ErrorKind::DivisionByZero);
        assert_eq!(eval_err("1 + \"a\"").kind, ErrorKind::TypeError);
        assert_eq!(eval_err("nope").kind, ErrorKind::NameError);
        assert_eq!(eval_err("[1][5]").kind, ErrorKind::IndexError);
        assert_eq!(eval_err("unknown_fn(1)").kind, ErrorKind::NameError);
    }

    #[test]
    fn indexing() {
        assert_eq!(eval("[10, 20, 30][1]"), Value::Int(20));
        assert_eq!(eval("[10, 20, 30][-1]"), Value::Int(30));
        assert_eq!(eval("\"héllo\"[1]"), Value::Str("é".into()));
        assert_eq!(eval("{\"k\": 9}[\"k\"]"), Value::Int(9));
        assert_eq!(eval("{\"k\": 9}[\"missing\"]"), Value::Null);
        assert_eq!(eval("{a: {b: 5}}.a.b"), Value::Int(5));
    }

    fn run_pe(
        src: &str,
        pe_name: &str,
        inputs: Vec<Option<Value>>,
    ) -> (Vec<(String, Value)>, Vec<String>, Value) {
        let script = parse_script(src).unwrap();
        let pe = script.pe(pe_name).unwrap();
        let mut interp = Interp::new(&script, Arc::new(NullHost)).with_seed(7);
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        interp.run_init(pe, &mut state, &mut sink).unwrap();
        for (it, input) in inputs.into_iter().enumerate() {
            let ret = interp.run_process(pe, input, None, it as i64, &mut state, &mut sink).unwrap();
            if let Some(v) = ret {
                // dispel4py convention: returned value goes to default port.
                let port = pe.default_output().unwrap_or("output").to_string();
                sink.emit(&port, v);
            }
        }
        (sink.port_values(), sink.printed, state)
    }

    #[test]
    fn is_prime_pe_end_to_end() {
        let src = r#"
            pe IsPrime : iterative {
                input num;
                output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num {
                        if num % i == 0 { prime = false; break; }
                        i = i + 1;
                    }
                    if prime { emit(num); }
                }
            }
        "#;
        let inputs: Vec<Option<Value>> = (1..=20).map(|n| Some(Value::Int(n))).collect();
        let (emitted, _, _) = run_pe(src, "IsPrime", inputs);
        let primes: Vec<i64> = emitted.iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19]);
    }

    #[test]
    fn stateful_count_words() {
        let src = r#"
            pe CountWords : generic {
                input input groupby 0;
                output output;
                init { state.count = {}; }
                process {
                    let word = input[0];
                    state.count[word] = get(state.count, word, 0) + input[1];
                    emit([word, state.count[word]]);
                }
            }
        "#;
        let inputs = vec![Some(jarr!["the", 1]), Some(jarr!["fox", 1]), Some(jarr!["the", 1])];
        let (emitted, _, state) = run_pe(src, "CountWords", inputs);
        assert_eq!(emitted[2].1, jarr!["the", 2]);
        assert_eq!(state["count"]["the"].as_i64(), Some(2));
        assert_eq!(state["count"]["fox"].as_i64(), Some(1));
    }

    #[test]
    fn producer_uses_iteration_and_rng() {
        let src = r#"
            pe NumberProducer : producer {
                output output;
                process { emit(randint(1, 1000)); }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "NumberProducer", vec![None, None, None]);
        assert_eq!(emitted.len(), 3);
        for (_, v) in &emitted {
            let n = v.as_i64().unwrap();
            assert!((1..=1000).contains(&n));
        }
        // Deterministic under the fixed seed.
        let (again, _, _) = run_pe(src, "NumberProducer", vec![None, None, None]);
        assert_eq!(emitted, again);
    }

    #[test]
    fn return_routes_to_default_port() {
        let src = r#"
            pe Double : iterative {
                input x;
                output output;
                process { return x * 2; }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "Double", vec![Some(Value::Int(21))]);
        assert_eq!(emitted, vec![("output".to_string(), Value::Int(42))]);
    }

    #[test]
    fn emit_to_named_port() {
        let src = r#"
            pe Fan : generic {
                input input;
                output big;
                output small;
                process {
                    if input >= 10 { emit("big", input); } else { emit("small", input); }
                }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "Fan", vec![Some(Value::Int(3)), Some(Value::Int(30))]);
        assert_eq!(emitted[0].0, "small");
        assert_eq!(emitted[1].0, "big");
    }

    #[test]
    fn emit_to_undeclared_port_fails() {
        let src = r#"pe X : generic { input input; output o; process { emit("nope", 1); } }"#;
        let script = parse_script(src).unwrap();
        let pe = script.pe("X").unwrap();
        let mut interp = Interp::new(&script, Arc::new(NullHost));
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        let err = interp.run_process(pe, Some(Value::Int(1)), None, 0, &mut state, &mut sink).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ContextError);
    }

    #[test]
    fn user_functions_and_recursion() {
        let src = r#"
            fn fact(n) {
                if n <= 1 { return 1; }
                return n * fact(n - 1);
            }
            pe F : iterative {
                input x; output output;
                process { emit(fact(x)); }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "F", vec![Some(Value::Int(6))]);
        assert_eq!(emitted[0].1, Value::Int(720));
    }

    #[test]
    fn infinite_recursion_hits_depth_limit() {
        let src = r#"
            fn loop_forever(n) { return loop_forever(n); }
            pe F : iterative { input x; output output; process { emit(loop_forever(x)); } }
        "#;
        let script = parse_script(src).unwrap();
        let pe = script.pe("F").unwrap();
        let mut interp = Interp::new(&script, Arc::new(NullHost));
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        let err = interp.run_process(pe, Some(Value::Int(1)), None, 0, &mut state, &mut sink).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::StackOverflow | ErrorKind::FuelExhausted));
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let src = "pe F : iterative { input x; output output; process { while true { let a = 1; } } }";
        let script = parse_script(src).unwrap();
        let pe = script.pe("F").unwrap();
        let mut interp = Interp::new(&script, Arc::new(NullHost)).with_fuel(10_000);
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        let err = interp.run_process(pe, Some(Value::Int(1)), None, 0, &mut state, &mut sink).unwrap_err();
        assert_eq!(err.kind, ErrorKind::FuelExhausted);
    }

    #[test]
    fn print_captured_by_sink() {
        let src = r#"
            pe P : consumer {
                input num;
                process { print("the num", num, "is prime"); }
            }
        "#;
        let (_, printed, _) = run_pe(src, "P", vec![Some(Value::Int(977))]);
        assert_eq!(printed, vec!["the num 977 is prime"]);
    }

    #[test]
    fn for_loops_and_ranges() {
        let src = r#"
            pe Sum : iterative {
                input n; output output;
                process {
                    let total = 0;
                    for i in range(0, n) { total = total + i; }
                    emit(total);
                }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "Sum", vec![Some(Value::Int(5))]);
        assert_eq!(emitted[0].1, Value::Int(10));
    }

    #[test]
    fn nested_assignment_autovivifies_maps() {
        let src = r#"
            pe S : generic {
                input input; output output;
                init { state.stats = {}; }
                process {
                    state.stats.deep[input] = 1;
                    emit(state.stats);
                }
            }
        "#;
        let (emitted, _, _) = run_pe(src, "S", vec![Some(Value::Str("k".into()))]);
        assert_eq!(emitted[0].1["deep"]["k"], Value::Int(1));
    }

    #[test]
    fn host_functions_called() {
        struct EchoHost;
        impl Host for EchoHost {
            fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
                Ok(jobj! { "module" => module, "name" => name, "nargs" => args.len() })
            }
        }
        let src = r#"pe H : iterative { input x; output output; process { emit(vo.fetch(x, 2)); } }"#;
        let script = parse_script(src).unwrap();
        let pe = script.pe("H").unwrap();
        let mut interp = Interp::new(&script, Arc::new(EchoHost));
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        interp.run_process(pe, Some(Value::Int(1)), None, 0, &mut state, &mut sink).unwrap();
        assert_eq!(sink.emitted[0].1["module"].as_str(), Some("vo"));
        assert_eq!(sink.emitted[0].1["nargs"].as_i64(), Some(2));
    }
}
