//! Builtin function table for LamScript.
//!
//! Builtins are pure (the RNG-backed ones live in the interpreter). They are
//! grouped into an unqualified global namespace plus `math` and `strings`
//! module namespaces — the "standard library" that the engine treats as
//! pre-installed, in contrast to user imports which trigger the simulated
//! library installer.

use crate::error::{ErrorKind, ScriptError};
use laminar_json::{Map, Value};

type R = Result<Value, ScriptError>;

/// Run an arm body that uses `?` internally.
fn arm(f: impl FnOnce() -> R) -> R {
    f()
}

fn arg_err(msg: impl Into<String>) -> ScriptError {
    ScriptError::new(ErrorKind::ArgumentError, msg)
}

fn type_err(msg: impl Into<String>) -> ScriptError {
    ScriptError::new(ErrorKind::TypeError, msg)
}

/// Extract two integer arguments (used by the interpreter's `randint`).
pub fn two_ints(args: &[Value], name: &str) -> Result<(i64, i64), ScriptError> {
    match args {
        [Value::Int(a), Value::Int(b)] => Ok((*a, *b)),
        _ => Err(arg_err(format!("{name}(int, int) expected"))),
    }
}

/// Names the engine treats as pre-installed modules (no install cost).
pub const BUILTIN_MODULES: &[&str] = &["math", "strings", "random"];

/// Dispatch a builtin. Returns `None` when `(module, name)` is not a builtin,
/// so the interpreter can fall through to user functions and host calls.
pub fn call(module: Option<&str>, name: &str, args: &[Value]) -> Option<R> {
    match module {
        None => call_global(name, args),
        Some("math") => call_math(name, args),
        Some("strings") => call_strings(name, args),
        _ => None,
    }
}

fn num(v: &Value, ctx: &str) -> Result<f64, ScriptError> {
    v.as_f64().ok_or_else(|| type_err(format!("{ctx}: expected number, got {}", v.type_name())))
}

fn call_global(name: &str, args: &[Value]) -> Option<R> {
    let r = match name {
        "len" => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Array(a)] => Ok(Value::Int(a.len() as i64)),
            [Value::Object(m)] => Ok(Value::Int(m.len() as i64)),
            _ => Err(arg_err("len(string|list|map)")),
        },
        "str" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.clone())),
            [v] => Ok(Value::Str(v.to_string())),
            _ => Err(arg_err("str(value)")),
        },
        "int" => match args {
            [Value::Int(i)] => Ok(Value::Int(*i)),
            [Value::Float(f)] => Ok(Value::Int(*f as i64)),
            [Value::Bool(b)] => Ok(Value::Int(*b as i64)),
            [Value::Str(s)] => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| arg_err(format!("int: cannot parse '{s}'"))),
            _ => Err(arg_err("int(value)")),
        },
        "float" => match args {
            [Value::Int(i)] => Ok(Value::Float(*i as f64)),
            [Value::Float(f)] => Ok(Value::Float(*f)),
            [Value::Str(s)] => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| arg_err(format!("float: cannot parse '{s}'"))),
            _ => Err(arg_err("float(value)")),
        },
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.wrapping_abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            _ => Err(arg_err("abs(number)")),
        },
        "min" | "max" => {
            if args.is_empty() {
                return Some(Err(arg_err(format!("{name}: needs at least one argument"))));
            }
            let items: Vec<Value> = if args.len() == 1 {
                match &args[0] {
                    Value::Array(a) if !a.is_empty() => a.clone(),
                    Value::Array(_) => return Some(Err(arg_err(format!("{name}: empty list")))),
                    v => vec![v.clone()],
                }
            } else {
                args.to_vec()
            };
            let mut best = items[0].clone();
            for v in &items[1..] {
                let (a, b) = match (best.as_f64(), v.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Some(Err(type_err(format!("{name}: non-numeric argument")))),
                };
                let take = if name == "min" { b < a } else { b > a };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "sum" => match args {
            [Value::Array(a)] => {
                let mut int_sum: i64 = 0;
                let mut float_sum = 0.0;
                let mut any_float = false;
                for v in a {
                    match v {
                        Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                        Value::Float(f) => {
                            any_float = true;
                            float_sum += f;
                        }
                        other => {
                            return Some(Err(type_err(format!("sum: non-numeric {}", other.type_name()))))
                        }
                    }
                }
                if any_float {
                    Ok(Value::Float(float_sum + int_sum as f64))
                } else {
                    Ok(Value::Int(int_sum))
                }
            }
            _ => Err(arg_err("sum(list)")),
        },
        "range" => match args {
            [Value::Int(b)] => Ok(Value::Array((0..*b).map(Value::Int).collect())),
            [Value::Int(a), Value::Int(b)] => Ok(Value::Array((*a..*b).map(Value::Int).collect())),
            [Value::Int(a), Value::Int(b), Value::Int(s)] => {
                if *s == 0 {
                    return Some(Err(arg_err("range: step must be non-zero")));
                }
                let mut out = Vec::new();
                let mut i = *a;
                while (*s > 0 && i < *b) || (*s < 0 && i > *b) {
                    out.push(Value::Int(i));
                    i += s;
                }
                Ok(Value::Array(out))
            }
            _ => Err(arg_err("range(stop) | range(start, stop) | range(start, stop, step)")),
        },
        "push" => match args {
            [Value::Array(a), v] => {
                let mut a = a.clone();
                a.push(v.clone());
                Ok(Value::Array(a))
            }
            _ => Err(arg_err("push(list, value)")),
        },
        "pop" => match args {
            [Value::Array(a)] => {
                if a.is_empty() {
                    Err(arg_err("pop: empty list"))
                } else {
                    Ok(Value::Array(a[..a.len() - 1].to_vec()))
                }
            }
            _ => Err(arg_err("pop(list)")),
        },
        "last" => match args {
            [Value::Array(a)] => a.last().cloned().ok_or_else(|| arg_err("last: empty list")),
            _ => Err(arg_err("last(list)")),
        },
        "first" => match args {
            [Value::Array(a)] => a.first().cloned().ok_or_else(|| arg_err("first: empty list")),
            _ => Err(arg_err("first(list)")),
        },
        "slice" => match args {
            [Value::Array(a), Value::Int(from), Value::Int(to)] => {
                let len = a.len() as i64;
                let norm = |i: i64| -> usize { (if i < 0 { i + len } else { i }).clamp(0, len) as usize };
                let (f, t) = (norm(*from), norm(*to));
                Ok(Value::Array(a[f.min(t)..t.max(f).min(a.len())].to_vec()))
            }
            _ => Err(arg_err("slice(list, from, to)")),
        },
        "sort" => match args {
            [Value::Array(a)] => {
                let mut a = a.clone();
                // Sort numbers before strings; stable within kind.
                a.sort_by(|x, y| match (x.as_f64(), y.as_f64()) {
                    (Some(p), Some(q)) => p.partial_cmp(&q).unwrap_or(std::cmp::Ordering::Equal),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => x.to_string().cmp(&y.to_string()),
                });
                Ok(Value::Array(a))
            }
            _ => Err(arg_err("sort(list)")),
        },
        "reverse" => match args {
            [Value::Array(a)] => Ok(Value::Array(a.iter().rev().cloned().collect())),
            [Value::Str(s)] => Ok(Value::Str(s.chars().rev().collect())),
            _ => Err(arg_err("reverse(list|string)")),
        },
        "contains" => match args {
            [Value::Array(a), v] => Ok(Value::Bool(a.iter().any(|x| crate::interp::value_eq(x, v)))),
            [Value::Str(s), Value::Str(sub)] => Ok(Value::Bool(s.contains(sub.as_str()))),
            [Value::Object(m), Value::Str(k)] => Ok(Value::Bool(m.contains_key(k))),
            _ => Err(arg_err("contains(list|string|map, value)")),
        },
        "get" => match args {
            // Null is treated as an empty map: uninitialized state reads
            // fall back to the default instead of erroring.
            [Value::Null, _] => Ok(Value::Null),
            [Value::Null, _, default] => Ok(default.clone()),
            [Value::Object(m), Value::Str(k)] => Ok(m.get(k).cloned().unwrap_or(Value::Null)),
            [Value::Object(m), Value::Str(k), default] => {
                Ok(m.get(k).cloned().unwrap_or_else(|| default.clone()))
            }
            [Value::Array(a), Value::Int(i)] => Ok(a.get(*i as usize).cloned().unwrap_or(Value::Null)),
            [Value::Array(a), Value::Int(i), default] => {
                Ok(a.get(*i as usize).cloned().unwrap_or_else(|| default.clone()))
            }
            _ => Err(arg_err("get(map|list, key, default?)")),
        },
        "keys" => match args {
            [Value::Object(m)] => Ok(Value::Array(m.keys().cloned().map(Value::Str).collect())),
            _ => Err(arg_err("keys(map)")),
        },
        "values" => match args {
            [Value::Object(m)] => Ok(Value::Array(m.values().cloned().collect())),
            _ => Err(arg_err("values(map)")),
        },
        "remove" => match args {
            [Value::Object(m), Value::Str(k)] => {
                let mut m = m.clone();
                m.remove(k);
                Ok(Value::Object(m))
            }
            _ => Err(arg_err("remove(map, key)")),
        },
        "merge" => match args {
            [Value::Object(a), Value::Object(b)] => {
                let mut m: Map = a.clone();
                for (k, v) in b {
                    m.insert(k.clone(), v.clone());
                }
                Ok(Value::Object(m))
            }
            _ => Err(arg_err("merge(map, map)")),
        },
        "type" => match args {
            [v] => Ok(Value::Str(v.type_name().to_string())),
            _ => Err(arg_err("type(value)")),
        },
        "round" => match args {
            [v] => arm(|| Ok(Value::Int(num(v, "round")?.round() as i64))),
            [v, Value::Int(d)] => arm(|| {
                let m = 10f64.powi(*d as i32);
                Ok(Value::Float((num(v, "round")? * m).round() / m))
            }),
            _ => Err(arg_err("round(number, digits?)")),
        },
        // String helpers are accessible unqualified too (Python-ish feel).
        "split" | "join" | "upper" | "lower" | "trim" | "replace" | "startswith" | "endswith" => {
            return call_strings(name, args)
        }
        "sqrt" | "floor" | "ceil" | "pow" | "exp" | "log" => return call_math(name, args),
        _ => return None,
    };
    Some(r)
}

fn call_math(name: &str, args: &[Value]) -> Option<R> {
    let r = match name {
        "sqrt" => match args {
            [v] => arm(|| {
                let f = num(v, "sqrt")?;
                if f < 0.0 {
                    Err(arg_err("sqrt of negative number"))
                } else {
                    Ok(Value::Float(f.sqrt()))
                }
            }),
            _ => Err(arg_err("sqrt(number)")),
        },
        "floor" => match args {
            [v] => arm(|| Ok(Value::Int(num(v, "floor")?.floor() as i64))),
            _ => Err(arg_err("floor(number)")),
        },
        "ceil" => match args {
            [v] => arm(|| Ok(Value::Int(num(v, "ceil")?.ceil() as i64))),
            _ => Err(arg_err("ceil(number)")),
        },
        "pow" => match args {
            [Value::Int(b), Value::Int(e)] if *e >= 0 && *e < 63 => Ok(Value::Int(b.wrapping_pow(*e as u32))),
            [a, b] => arm(|| Ok(Value::Float(num(a, "pow")?.powf(num(b, "pow")?)))),
            _ => Err(arg_err("pow(base, exp)")),
        },
        "exp" => match args {
            [v] => arm(|| Ok(Value::Float(num(v, "exp")?.exp()))),
            _ => Err(arg_err("exp(number)")),
        },
        "log" => match args {
            [v] => arm(|| {
                let f = num(v, "log")?;
                if f <= 0.0 {
                    Err(arg_err("log of non-positive number"))
                } else {
                    Ok(Value::Float(f.ln()))
                }
            }),
            [v, b] => arm(|| {
                let (f, base) = (num(v, "log")?, num(b, "log")?);
                if f <= 0.0 || base <= 0.0 || base == 1.0 {
                    Err(arg_err("log domain error"))
                } else {
                    Ok(Value::Float(f.log(base)))
                }
            }),
            _ => Err(arg_err("log(number, base?)")),
        },
        "sin" => match args {
            [v] => arm(|| Ok(Value::Float(num(v, "sin")?.sin()))),
            _ => Err(arg_err("sin(number)")),
        },
        "cos" => match args {
            [v] => arm(|| Ok(Value::Float(num(v, "cos")?.cos()))),
            _ => Err(arg_err("cos(number)")),
        },
        "atan2" => match args {
            [y, x] => arm(|| Ok(Value::Float(num(y, "atan2")?.atan2(num(x, "atan2")?)))),
            _ => Err(arg_err("atan2(y, x)")),
        },
        "pi" => {
            if args.is_empty() {
                Ok(Value::Float(std::f64::consts::PI))
            } else {
                Err(arg_err("pi()"))
            }
        }
        _ => return None,
    };
    Some(r)
}

fn call_strings(name: &str, args: &[Value]) -> Option<R> {
    let r = match name {
        "split" => match args {
            [Value::Str(s)] => {
                Ok(Value::Array(s.split_whitespace().map(|p| Value::Str(p.to_string())).collect()))
            }
            [Value::Str(s), Value::Str(sep)] => {
                if sep.is_empty() {
                    return Some(Err(arg_err("split: empty separator")));
                }
                Ok(Value::Array(s.split(sep.as_str()).map(|p| Value::Str(p.to_string())).collect()))
            }
            _ => Err(arg_err("split(string, sep?)")),
        },
        "join" => match args {
            [Value::Array(a), Value::Str(sep)] => arm(|| {
                let parts: Result<Vec<String>, ScriptError> = a
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Ok(s.clone()),
                        other => Ok(other.to_string()),
                    })
                    .collect();
                Ok(Value::Str(parts?.join(sep)))
            }),
            _ => Err(arg_err("join(list, sep)")),
        },
        "upper" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            _ => Err(arg_err("upper(string)")),
        },
        "lower" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            _ => Err(arg_err("lower(string)")),
        },
        "trim" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.trim().to_string())),
            _ => Err(arg_err("trim(string)")),
        },
        "replace" => match args {
            [Value::Str(s), Value::Str(from), Value::Str(to)] => {
                if from.is_empty() {
                    return Some(Err(arg_err("replace: empty pattern")));
                }
                Ok(Value::Str(s.replace(from.as_str(), to)))
            }
            _ => Err(arg_err("replace(string, from, to)")),
        },
        "startswith" => match args {
            [Value::Str(s), Value::Str(p)] => Ok(Value::Bool(s.starts_with(p.as_str()))),
            _ => Err(arg_err("startswith(string, prefix)")),
        },
        "endswith" => match args {
            [Value::Str(s), Value::Str(p)] => Ok(Value::Bool(s.ends_with(p.as_str()))),
            _ => Err(arg_err("endswith(string, suffix)")),
        },
        "chars" => match args {
            [Value::Str(s)] => Ok(Value::Array(s.chars().map(|c| Value::Str(c.to_string())).collect())),
            _ => Err(arg_err("chars(string)")),
        },
        _ => return None,
    };
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jarr;

    fn c(name: &str, args: &[Value]) -> Value {
        call(None, name, args).expect("builtin exists").expect("builtin ok")
    }

    fn cm(module: &str, name: &str, args: &[Value]) -> Value {
        call(Some(module), name, args).expect("builtin exists").expect("builtin ok")
    }

    #[test]
    fn collection_builtins() {
        assert_eq!(c("len", &[Value::Str("héllo".into())]), Value::Int(5));
        assert_eq!(c("len", &[jarr![1, 2]]), Value::Int(2));
        assert_eq!(c("range", &[Value::Int(3)]), jarr![0, 1, 2]);
        assert_eq!(c("range", &[Value::Int(5), Value::Int(1), Value::Int(-2)]), jarr![5, 3]);
        assert_eq!(c("push", &[jarr![1], Value::Int(2)]), jarr![1, 2]);
        assert_eq!(c("sort", &[jarr![3, 1, 2]]), jarr![1, 2, 3]);
        assert_eq!(c("reverse", &[jarr![1, 2]]), jarr![2, 1]);
        assert_eq!(c("sum", &[jarr![1, 2, 3]]), Value::Int(6));
        assert_eq!(c("sum", &[jarr![1, 2.5]]), Value::Float(3.5));
        assert_eq!(c("slice", &[jarr![1, 2, 3, 4], Value::Int(1), Value::Int(3)]), jarr![2, 3]);
        assert_eq!(c("slice", &[jarr![1, 2, 3, 4], Value::Int(-2), Value::Int(4)]), jarr![3, 4]);
    }

    #[test]
    fn min_max() {
        assert_eq!(c("min", &[Value::Int(3), Value::Int(1)]), Value::Int(1));
        assert_eq!(c("max", &[jarr![1, 9.5, 3]]), Value::Float(9.5));
        assert!(call(None, "min", &[jarr![]]).unwrap().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(c("int", &[Value::Str(" 42 ".into())]), Value::Int(42));
        assert_eq!(c("int", &[Value::Float(2.9)]), Value::Int(2));
        assert_eq!(c("float", &[Value::Int(2)]), Value::Float(2.0));
        assert_eq!(c("str", &[Value::Int(7)]), Value::Str("7".into()));
        assert_eq!(c("str", &[Value::Str("x".into())]), Value::Str("x".into()));
        assert_eq!(c("type", &[jarr![]]), Value::Str("array".into()));
        assert!(call(None, "int", &[Value::Str("nope".into())]).unwrap().is_err());
    }

    #[test]
    fn map_builtins() {
        let m = laminar_json::jobj! { "a" => 1, "b" => 2 };
        assert_eq!(c("keys", std::slice::from_ref(&m)), jarr!["a", "b"]);
        assert_eq!(c("values", std::slice::from_ref(&m)), jarr![1, 2]);
        assert_eq!(c("get", &[m.clone(), Value::Str("a".into())]), Value::Int(1));
        assert_eq!(c("get", &[m.clone(), Value::Str("z".into()), Value::Int(0)]), Value::Int(0));
        assert_eq!(c("contains", &[m.clone(), Value::Str("b".into())]), Value::Bool(true));
        let removed = c("remove", &[m.clone(), Value::Str("a".into())]);
        assert!(removed.get("a").is_none());
        let merged = c("merge", &[m, laminar_json::jobj! { "c" => 3 }]);
        assert_eq!(merged["c"], Value::Int(3));
    }

    #[test]
    fn math_builtins() {
        assert_eq!(cm("math", "sqrt", &[Value::Int(9)]), Value::Float(3.0));
        assert_eq!(cm("math", "floor", &[Value::Float(2.7)]), Value::Int(2));
        assert_eq!(cm("math", "ceil", &[Value::Float(2.1)]), Value::Int(3));
        assert_eq!(cm("math", "pow", &[Value::Int(2), Value::Int(10)]), Value::Int(1024));
        assert_eq!(cm("math", "pow", &[Value::Float(4.0), Value::Float(0.5)]), Value::Float(2.0));
        assert!(call(Some("math"), "sqrt", &[Value::Int(-1)]).unwrap().is_err());
        assert!(call(Some("math"), "log", &[Value::Int(0)]).unwrap().is_err());
        // unqualified aliases
        assert_eq!(c("sqrt", &[Value::Int(4)]), Value::Float(2.0));
    }

    #[test]
    fn string_builtins() {
        assert_eq!(cm("strings", "split", &[Value::Str("a b  c".into())]), jarr!["a", "b", "c"]);
        assert_eq!(
            cm("strings", "split", &[Value::Str("a,b".into()), Value::Str(",".into())]),
            jarr!["a", "b"]
        );
        assert_eq!(cm("strings", "join", &[jarr!["x", 1], Value::Str("-".into())]), Value::Str("x-1".into()));
        assert_eq!(c("upper", &[Value::Str("ab".into())]), Value::Str("AB".into()));
        assert_eq!(c("trim", &[Value::Str("  x ".into())]), Value::Str("x".into()));
        assert_eq!(
            c("replace", &[Value::Str("aXa".into()), Value::Str("X".into()), Value::Str("b".into())]),
            Value::Str("aba".into())
        );
        assert_eq!(c("startswith", &[Value::Str("abc".into()), Value::Str("ab".into())]), Value::Bool(true));
    }

    #[test]
    fn unknown_builtin_is_none() {
        assert!(call(None, "no_such_fn", &[]).is_none());
        assert!(call(Some("nomod"), "f", &[]).is_none());
        assert!(call(Some("math"), "no_such", &[]).is_none());
    }

    #[test]
    fn round_builtin() {
        assert_eq!(c("round", &[Value::Float(2.5)]), Value::Int(3));
        assert_eq!(c("round", &[Value::Float(2.444), Value::Int(2)]), Value::Float(2.44));
    }
}
