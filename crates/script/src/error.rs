//! LamScript error type, shared by lexer, parser and interpreter.

use std::fmt;

/// Broad classification of a script failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical error: bad character, unterminated string, bad number.
    Lex,
    /// Syntax error.
    Parse,
    /// Name lookup failure at runtime.
    NameError,
    /// Type mismatch at runtime (e.g. `"a" * {}`).
    TypeError,
    /// Index/key out of range.
    IndexError,
    /// Division or modulo by zero.
    DivisionByZero,
    /// Wrong arity or bad argument to a builtin/host function.
    ArgumentError,
    /// The fuel budget was exhausted — runaway loop protection.
    FuelExhausted,
    /// Call stack exceeded the recursion bound.
    StackOverflow,
    /// A host function reported a failure.
    HostError,
    /// `emit` used outside a PE process context.
    ContextError,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::NameError => "name error",
            ErrorKind::TypeError => "type error",
            ErrorKind::IndexError => "index error",
            ErrorKind::DivisionByZero => "division by zero",
            ErrorKind::ArgumentError => "argument error",
            ErrorKind::FuelExhausted => "fuel exhausted",
            ErrorKind::StackOverflow => "stack overflow",
            ErrorKind::HostError => "host error",
            ErrorKind::ContextError => "context error",
        };
        f.write_str(s)
    }
}

/// A LamScript error with source position (1-based; 0 means "unknown").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// Classification.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// 1-based source line, 0 if not applicable.
    pub line: usize,
    /// 1-based source column, 0 if not applicable.
    pub column: usize,
}

impl ScriptError {
    /// Error with a source position.
    pub fn at(kind: ErrorKind, message: impl Into<String>, line: usize, column: usize) -> Self {
        ScriptError { kind, message: message.into(), line, column }
    }

    /// Error without a position (runtime errors raised by builtins).
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ScriptError { kind, message: message.into(), line: 0, column: 0 }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}, column {}: {}", self.kind, self.line, self.column, self.message)
        } else {
            write!(f, "{}: {}", self.kind, self.message)
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let e = ScriptError::at(ErrorKind::Parse, "expected '{'", 4, 9);
        assert_eq!(e.to_string(), "parse error at line 4, column 9: expected '{'");
    }

    #[test]
    fn display_without_position() {
        let e = ScriptError::new(ErrorKind::TypeError, "cannot add string and int");
        assert_eq!(e.to_string(), "type error: cannot add string and int");
    }
}
