//! Register-machine executor for compiled LamScript ([`crate::compile`]).
//!
//! `Vm` is a drop-in peer of [`crate::interp::Interp`]: same constructor
//! shape, same `run_init`/`run_process` contract, same fuel budget, call
//! depth, RNG stream, emission order, and error kinds/messages. The
//! differential suite (`tests/proptest_vm.rs`) holds the two executors to
//! byte-identical observable behavior, which is what lets the engine swap
//! the VM in underneath all four mappings with the interpreter kept as
//! fallback and oracle.
//!
//! Execution model: one flat `Vec<Value>` register stack, frames addressed
//! by a base offset. User-function calls place the callee frame directly
//! above the caller's registers; `for` loops keep their materialized
//! iterators on a side stack so `break`/`return` can unwind them exactly
//! like the interpreter dropping its eager item vector.

use crate::builtins;
use crate::compile::{Chunk, Instr, PathAcc, Program, RandKind};
use crate::error::{ErrorKind, ScriptError};
use crate::interp::{binary_op, display_value, truthy, Host, Sink, DEFAULT_FUEL, MAX_CALL_DEPTH};
use laminar_json::{Map, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// The per-invocation binding of the datum under its input-port name
/// (`input words;` makes the datum visible as `words`). The port is only
/// known at runtime, so the compiler routes unresolved names here.
type Dynamic = Option<(String, Value)>;

/// A bytecode executor bound to a compiled program.
///
/// Like [`crate::interp::Interp`], fully owned (`'static` + `Send`): PE
/// instances hold one across process calls so RNG state and fuel
/// accounting persist per instance, and the register stack is reused
/// between invocations.
pub struct Vm {
    program: Arc<Program>,
    host: Arc<dyn Host + Send + Sync>,
    fuel: u64,
    fuel_limit: u64,
    rng: StdRng,
    stack: Vec<Value>,
    iters: Vec<std::vec::IntoIter<Value>>,
}

impl Vm {
    /// Build a VM for `program` with the given host.
    pub fn new(program: Arc<Program>, host: Arc<dyn Host + Send + Sync>) -> Self {
        Vm {
            program,
            host,
            fuel: DEFAULT_FUEL,
            fuel_limit: DEFAULT_FUEL,
            rng: StdRng::seed_from_u64(0x1a31_4a12),
            stack: Vec::new(),
            iters: Vec::new(),
        }
    }

    /// Override the per-invocation fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_limit = fuel;
        self.fuel = fuel;
        self
    }

    /// Seed the RNG (tests and reproducible benchmarks).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Fuel left after the last invocation (differential testing).
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// Current RNG state, for checkpointing. The state word plus the
    /// PE's `state.*` value is the VM's entire cross-invocation
    /// footprint (fuel resets per invocation; stack/iters are scratch).
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restore an RNG state captured by [`Vm::rng_state`].
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng.set_state(state);
    }

    fn burn(&mut self, line: usize) -> Result<(), ScriptError> {
        if self.fuel == 0 {
            return Err(ScriptError::at(
                ErrorKind::FuelExhausted,
                format!("fuel budget of {} exhausted", self.fuel_limit),
                line,
                0,
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Run a PE's `init` block against `state`. Mirrors
    /// `Interp::run_init`, including the error path leaving `state` null.
    pub fn run_init(&mut self, pe: &str, state: &mut Value, sink: &mut dyn Sink) -> Result<(), ScriptError> {
        if state.is_null() {
            *state = Value::Object(Map::new());
        }
        let program = Arc::clone(&self.program);
        let pp = program
            .pes
            .get(pe)
            .ok_or_else(|| ScriptError::new(ErrorKind::NameError, format!("unknown PE '{pe}'")))?;
        let Some(init) = &pp.init else { return Ok(()) };
        self.fuel = self.fuel_limit;
        self.stack.clear();
        self.stack.resize(init.n_regs as usize, Value::Null);
        self.iters.clear();
        self.stack[0] = std::mem::take(state);
        let mut dynamic: Dynamic = None;
        self.exec(&program, init, 0, 0, sink, &mut dynamic)?;
        *state = std::mem::take(&mut self.stack[0]);
        Ok(())
    }

    /// Run one `process` invocation — the same contract as
    /// `Interp::run_process`.
    pub fn run_process(
        &mut self,
        pe: &str,
        input: Option<Value>,
        input_port: Option<&str>,
        iteration: i64,
        state: &mut Value,
        sink: &mut dyn Sink,
    ) -> Result<Option<Value>, ScriptError> {
        self.fuel = self.fuel_limit;
        if state.is_null() {
            *state = Value::Object(Map::new());
        }
        let program = Arc::clone(&self.program);
        let pp = program
            .pes
            .get(pe)
            .ok_or_else(|| ScriptError::new(ErrorKind::NameError, format!("unknown PE '{pe}'")))?;
        let chunk = &pp.process;
        self.stack.clear();
        self.stack.resize(chunk.n_regs as usize, Value::Null);
        self.iters.clear();
        // Root frame mirrors the interpreter's root scope definitions, in
        // order: state, port-named datum alias, input, input_port,
        // iteration. The alias either collides with a fixed slot (where a
        // later define overwrites or is overwritten) or becomes the
        // dynamic binding.
        self.stack[0] = std::mem::take(state);
        let datum = input.unwrap_or(Value::Null);
        let mut dynamic: Dynamic = None;
        let pv = input_port.map(str::to_string).or_else(|| pp.default_input.clone());
        if let Some(pv) = pv {
            match pv.as_str() {
                // `input` is skipped outright; `input_port` and
                // `iteration` are defined after the alias in the
                // interpreter and thus shadow it.
                "input" | "input_port" | "iteration" => {}
                "state" => self.stack[0] = datum.clone(),
                _ => dynamic = Some((pv, datum.clone())),
            }
        }
        self.stack[1] = datum;
        self.stack[2] = input_port.map(Value::from).unwrap_or(Value::Null);
        self.stack[3] = Value::Int(iteration);
        let v = self.exec(&program, chunk, 0, 0, sink, &mut dynamic)?;
        *state = std::mem::take(&mut self.stack[0]);
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// Execute one chunk frame; unwinds this frame's `for` iterators on
    /// both exits.
    fn exec(
        &mut self,
        program: &Program,
        chunk: &Chunk,
        base: usize,
        depth: usize,
        sink: &mut dyn Sink,
        dynamic: &mut Dynamic,
    ) -> Result<Value, ScriptError> {
        let iter_base = self.iters.len();
        let r = self.exec_inner(program, chunk, base, depth, sink, dynamic);
        self.iters.truncate(iter_base);
        r
    }

    fn exec_inner(
        &mut self,
        program: &Program,
        chunk: &Chunk,
        base: usize,
        depth: usize,
        sink: &mut dyn Sink,
        dynamic: &mut Dynamic,
    ) -> Result<Value, ScriptError> {
        if self.stack.len() < base + chunk.n_regs as usize {
            self.stack.resize(base + chunk.n_regs as usize, Value::Null);
        }
        let mut pc = 0usize;
        while pc < chunk.instrs.len() {
            let instr = chunk.instrs[pc];
            pc += 1;
            match instr {
                Instr::Fuel { line } => self.burn(line as usize)?,
                Instr::Const { dst, idx } => {
                    self.burn(0)?;
                    self.stack[base + dst as usize] = chunk.consts[idx as usize].clone();
                }
                Instr::Local { dst, slot, line } => {
                    self.burn(line as usize)?;
                    let v = self.stack[base + slot as usize].clone();
                    self.stack[base + dst as usize] = v;
                }
                Instr::Dynamic { dst, name, line } => {
                    self.burn(line as usize)?;
                    let wanted = &chunk.names[name as usize];
                    match dynamic {
                        Some((n, v)) if n == wanted => {
                            let v = v.clone();
                            self.stack[base + dst as usize] = v;
                        }
                        _ => {
                            return Err(ScriptError::at(
                                ErrorKind::NameError,
                                format!("undefined variable '{wanted}'"),
                                line as usize,
                                0,
                            ))
                        }
                    }
                }
                Instr::StoreLocal { slot, src } => {
                    let v = std::mem::take(&mut self.stack[base + src as usize]);
                    self.stack[base + slot as usize] = v;
                }
                Instr::StoreDynamic { name, src } => {
                    let wanted = &chunk.names[name as usize];
                    match dynamic {
                        Some((n, v)) if n == wanted => {
                            *v = std::mem::take(&mut self.stack[base + src as usize]);
                        }
                        _ => {
                            return Err(ScriptError::new(
                                ErrorKind::NameError,
                                format!("assignment to undefined variable '{wanted}'"),
                            ))
                        }
                    }
                }
                Instr::StorePath { root_local, root, path_start, path_len, src } => {
                    self.store_path(chunk, base, root_local, root, path_start, path_len, src, dynamic)?;
                }
                Instr::MakeList { dst, start, n } => {
                    let mut out = Vec::with_capacity(n as usize);
                    for i in 0..n as usize {
                        out.push(std::mem::take(&mut self.stack[base + start as usize + i]));
                    }
                    self.stack[base + dst as usize] = Value::Array(out);
                }
                Instr::MakeMap { dst, keys_start, start, n } => {
                    let mut m = Map::new();
                    for i in 0..n as usize {
                        m.insert(
                            chunk.names[keys_start as usize + i].clone(),
                            std::mem::take(&mut self.stack[base + start as usize + i]),
                        );
                    }
                    self.stack[base + dst as usize] = Value::Object(m);
                }
                Instr::Bin { op, dst, a, b, line } => {
                    let v = binary_op(
                        op,
                        &self.stack[base + a as usize],
                        &self.stack[base + b as usize],
                        line as usize,
                    )?;
                    self.stack[base + dst as usize] = v;
                }
                Instr::Neg { dst } => {
                    let v = std::mem::take(&mut self.stack[base + dst as usize]);
                    self.stack[base + dst as usize] = match v {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(ScriptError::new(
                                ErrorKind::TypeError,
                                format!("cannot negate {}", other.type_name()),
                            ))
                        }
                    };
                }
                Instr::Not { dst } => {
                    let b = !truthy(&self.stack[base + dst as usize]);
                    self.stack[base + dst as usize] = Value::Bool(b);
                }
                Instr::Truthy { dst } => {
                    let b = truthy(&self.stack[base + dst as usize]);
                    self.stack[base + dst as usize] = Value::Bool(b);
                }
                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIfFalse { cond, to } => {
                    if !truthy(&self.stack[base + cond as usize]) {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfTrue { cond, to } => {
                    if truthy(&self.stack[base + cond as usize]) {
                        pc = to as usize;
                    }
                }
                Instr::IndexGet { dst, obj, idx } => {
                    let b = std::mem::take(&mut self.stack[base + obj as usize]);
                    let i = std::mem::take(&mut self.stack[base + idx as usize]);
                    self.stack[base + dst as usize] = index_owned(b, i)?;
                }
                Instr::FieldGet { dst, obj, name, line } => {
                    let b = std::mem::take(&mut self.stack[base + obj as usize]);
                    let field = &chunk.names[name as usize];
                    self.stack[base + dst as usize] = match b {
                        Value::Object(mut m) => m.remove(field.as_str()).unwrap_or(Value::Null),
                        other => {
                            return Err(ScriptError::at(
                                ErrorKind::TypeError,
                                format!("cannot access field '{field}' on {}", other.type_name()),
                                line as usize,
                                0,
                            ))
                        }
                    };
                }
                Instr::CallFn { dst, fidx, start, argc, line } => {
                    let callee = &program.fns[fidx as usize];
                    if depth + 1 > MAX_CALL_DEPTH {
                        return Err(ScriptError::at(
                            ErrorKind::StackOverflow,
                            "call depth exceeded",
                            line as usize,
                            0,
                        ));
                    }
                    if callee.arity != argc as usize {
                        return Err(ScriptError::at(
                            ErrorKind::ArgumentError,
                            format!("{}() expects {} arguments, got {}", callee.name, callee.arity, argc),
                            line as usize,
                            0,
                        ));
                    }
                    let callee_base = base + chunk.n_regs as usize;
                    let need = callee_base + callee.n_regs as usize;
                    if self.stack.len() < need {
                        self.stack.resize(need, Value::Null);
                    }
                    for i in 0..argc as usize {
                        self.stack[callee_base + i] =
                            std::mem::take(&mut self.stack[base + start as usize + i]);
                    }
                    // User functions see a fresh environment: no datum
                    // alias.
                    let mut none: Dynamic = None;
                    let v = self.exec(program, callee, callee_base, depth + 1, sink, &mut none)?;
                    self.stack[base + dst as usize] = v;
                }
                Instr::CallBuiltin { dst, module, name, start, argc, line } => {
                    let module_s =
                        if module == u16::MAX { None } else { Some(chunk.names[module as usize].as_str()) };
                    let name_s = &chunk.names[name as usize];
                    let lo = base + start as usize;
                    let args = &self.stack[lo..lo + argc as usize];
                    match builtins::call(module_s, name_s, args) {
                        Some(r) => {
                            let v = r.map_err(|mut e| {
                                if e.line == 0 {
                                    e.line = line as usize;
                                }
                                e
                            })?;
                            self.stack[base + dst as usize] = v;
                        }
                        // Unreachable: classification probed the same table
                        // at compile time.
                        None => {
                            return Err(ScriptError::at(
                                ErrorKind::NameError,
                                format!("unknown function '{name_s}'"),
                                line as usize,
                                0,
                            ))
                        }
                    }
                }
                Instr::CallHost { dst, module, name, start, argc } => {
                    let lo = base + start as usize;
                    let v = self.host.call(
                        &chunk.names[module as usize],
                        &chunk.names[name as usize],
                        &self.stack[lo..lo + argc as usize],
                    )?;
                    self.stack[base + dst as usize] = v;
                }
                Instr::Print { dst, start, argc } => {
                    let lo = base + start as usize;
                    let text = self.stack[lo..lo + argc as usize]
                        .iter()
                        .map(display_value)
                        .collect::<Vec<_>>()
                        .join(" ");
                    sink.print(&text);
                    self.stack[base + dst as usize] = Value::Null;
                }
                Instr::Rand { dst, kind, start, argc } => {
                    let lo = base + start as usize;
                    let args = &self.stack[lo..lo + argc as usize];
                    let v = match kind {
                        RandKind::Randint => {
                            let (a, b) = builtins::two_ints(args, "randint")?;
                            if a > b {
                                return Err(ScriptError::new(
                                    ErrorKind::ArgumentError,
                                    "randint: empty range",
                                ));
                            }
                            Value::Int(self.rng.random_range(a..=b))
                        }
                        RandKind::Random => {
                            if !args.is_empty() {
                                return Err(ScriptError::new(
                                    ErrorKind::ArgumentError,
                                    "random() takes no arguments",
                                ));
                            }
                            Value::Float(self.rng.random::<f64>())
                        }
                        RandKind::Shuffle => {
                            let [Value::Array(a)] = args else {
                                return Err(ScriptError::new(ErrorKind::ArgumentError, "shuffle(list)"));
                            };
                            let mut a = a.clone();
                            for i in (1..a.len()).rev() {
                                let j = self.rng.random_range(0..=i);
                                a.swap(i, j);
                            }
                            Value::Array(a)
                        }
                    };
                    self.stack[base + dst as usize] = v;
                }
                Instr::EmitDefault { src } => {
                    let v = std::mem::take(&mut self.stack[base + src as usize]);
                    let port = chunk.default_output.as_deref().expect("compiled with default output");
                    sink.emit(port, v);
                }
                Instr::EmitPort { name, src } => {
                    let v = std::mem::take(&mut self.stack[base + src as usize]);
                    sink.emit(&chunk.names[name as usize], v);
                }
                Instr::ForPrep { src } => {
                    let seq = std::mem::take(&mut self.stack[base + src as usize]);
                    let items: Vec<Value> = match seq {
                        Value::Array(a) => a,
                        Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                        Value::Object(m) => m.into_keys().map(Value::Str).collect(),
                        other => {
                            return Err(ScriptError::new(
                                ErrorKind::TypeError,
                                format!("cannot iterate over {}", other.type_name()),
                            ))
                        }
                    };
                    self.iters.push(items.into_iter());
                }
                Instr::ForNext { slot, exit } => match self.iters.last_mut().and_then(Iterator::next) {
                    Some(item) => {
                        self.burn(0)?;
                        self.stack[base + slot as usize] = item;
                    }
                    None => {
                        self.iters.pop();
                        pc = exit as usize;
                    }
                },
                Instr::PopIter => {
                    self.iters.pop();
                }
                Instr::Return { src } => {
                    return Ok(std::mem::take(&mut self.stack[base + src as usize]));
                }
                Instr::ReturnNull => return Ok(Value::Null),
                Instr::Raise { idx } => return Err(chunk.errors[idx as usize].clone()),
                Instr::End => return Ok(Value::Null),
            }
        }
        Ok(Value::Null)
    }

    /// Assignment through an accessor path — `Interp::assign`'s walk with
    /// the indices pre-evaluated into registers.
    #[allow(clippy::too_many_arguments)] // unpacked StorePath operands
    fn store_path(
        &mut self,
        chunk: &Chunk,
        base: usize,
        root_local: bool,
        root: u16,
        path_start: u16,
        path_len: u16,
        src: u16,
        dynamic: &mut Dynamic,
    ) -> Result<(), ScriptError> {
        enum OAcc<'c> {
            Field(&'c str),
            Index(Value),
        }
        let value = std::mem::take(&mut self.stack[base + src as usize]);
        let mut accs = Vec::with_capacity(path_len as usize);
        for p in &chunk.paths[path_start as usize..(path_start + path_len) as usize] {
            match p {
                PathAcc::Field(n) => accs.push(OAcc::Field(chunk.names[*n as usize].as_str())),
                PathAcc::Index(r) => {
                    accs.push(OAcc::Index(std::mem::take(&mut self.stack[base + *r as usize])))
                }
            }
        }
        let mut place: &mut Value = if root_local {
            &mut self.stack[base + root as usize]
        } else {
            let wanted = &chunk.names[root as usize];
            match dynamic {
                Some((n, v)) if n == wanted => v,
                _ => {
                    return Err(ScriptError::new(
                        ErrorKind::NameError,
                        format!("assignment to undefined variable '{wanted}'"),
                    ))
                }
            }
        };
        for acc in accs {
            match acc {
                OAcc::Field(f) => {
                    if place.is_null() {
                        *place = Value::Object(Map::new());
                    }
                    let m = place.as_object_mut().ok_or_else(|| {
                        ScriptError::new(
                            ErrorKind::TypeError,
                            format!("cannot set field '{f}' on non-object"),
                        )
                    })?;
                    place = m.entry(f.to_string()).or_insert(Value::Null);
                }
                OAcc::Index(idx) => {
                    if place.is_null() && matches!(idx, Value::Str(_)) {
                        *place = Value::Object(Map::new());
                    }
                    match (&mut *place, idx) {
                        (Value::Object(m), key) => {
                            let k = match key {
                                Value::Str(s) => s,
                                other => other.to_string(),
                            };
                            place = m.entry(k).or_insert(Value::Null);
                        }
                        (Value::Array(a), Value::Int(i)) => {
                            let len = a.len() as i64;
                            let real = if i < 0 { i + len } else { i };
                            if real < 0 || real >= len {
                                return Err(ScriptError::new(
                                    ErrorKind::IndexError,
                                    format!("list index {i} out of range (len {len})"),
                                ));
                            }
                            place = &mut a[real as usize];
                        }
                        (other, idx) => {
                            return Err(ScriptError::new(
                                ErrorKind::TypeError,
                                format!("cannot index {} with {}", other.type_name(), idx.type_name()),
                            ))
                        }
                    }
                }
            }
        }
        *place = value;
        Ok(())
    }
}

/// Owned-value indexing with the interpreter's exact error messages
/// (`index_value` clones; owning the operands lets the VM move instead).
fn index_owned(base: Value, index: Value) -> Result<Value, ScriptError> {
    match (base, index) {
        (Value::Array(mut a), Value::Int(i)) => {
            let len = a.len() as i64;
            let real = if i < 0 { i + len } else { i };
            if real < 0 || real >= len {
                return Err(ScriptError::new(
                    ErrorKind::IndexError,
                    format!("list index {i} out of range (len {len})"),
                ));
            }
            Ok(a.swap_remove(real as usize))
        }
        (Value::Str(s), Value::Int(i)) => {
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as i64;
            let real = if i < 0 { i + len } else { i };
            chars.get(real as usize).map(|c| Value::Str(c.to_string())).ok_or_else(|| {
                ScriptError::new(ErrorKind::IndexError, format!("string index {i} out of range"))
            })
        }
        (Value::Object(mut m), Value::Str(k)) => Ok(m.remove(&k).unwrap_or(Value::Null)),
        (b, i) => Err(ScriptError::new(
            ErrorKind::TypeError,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_script;
    use crate::interp::{Interp, NullHost, VecSink};
    use crate::parser::parse_script;

    type Observed = (Vec<(String, Value)>, Vec<String>, Value);

    fn run_both(src: &str, pe: &str, inputs: Vec<Option<Value>>) -> (Observed, Observed) {
        let script = parse_script(src).unwrap();
        let program = Arc::new(compile_script(&script).unwrap());
        let decl = script.pe(pe).unwrap();

        let mut interp = Interp::new(&script, Arc::new(NullHost)).with_seed(7);
        let mut istate = Value::Null;
        let mut isink = VecSink::default();
        interp.run_init(decl, &mut istate, &mut isink).unwrap();
        for (it, input) in inputs.iter().cloned().enumerate() {
            if let Some(v) =
                interp.run_process(decl, input, None, it as i64, &mut istate, &mut isink).unwrap()
            {
                isink.emit(decl.default_output().unwrap_or("output"), v);
            }
        }

        let mut vm = Vm::new(program, Arc::new(NullHost)).with_seed(7);
        let mut vstate = Value::Null;
        let mut vsink = VecSink::default();
        vm.run_init(pe, &mut vstate, &mut vsink).unwrap();
        for (it, input) in inputs.into_iter().enumerate() {
            if let Some(v) = vm.run_process(pe, input, None, it as i64, &mut vstate, &mut vsink).unwrap() {
                vsink.emit(decl.default_output().unwrap_or("output"), v);
            }
        }

        ((isink.port_values(), isink.printed, istate), (vsink.port_values(), vsink.printed, vstate))
    }

    #[test]
    fn vm_matches_interp_on_prime_sieve() {
        let src = r#"
            pe IsPrime : iterative {
                input num;
                output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num {
                        if num % i == 0 { prime = false; break; }
                        i = i + 1;
                    }
                    if prime { emit(num); }
                }
            }
        "#;
        let inputs: Vec<Option<Value>> = (1..=30).map(|n| Some(Value::Int(n))).collect();
        let (interp, vm) = run_both(src, "IsPrime", inputs);
        assert_eq!(interp, vm);
        let primes: Vec<i64> = vm.0.iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn vm_matches_interp_on_stateful_rng_and_functions() {
        let src = r#"
            fn scale(v, k) { return v * k; }
            pe Mix : generic {
                input data;
                output big;
                output small;
                init { state.seen = 0; state.log = []; }
                process {
                    state.seen = state.seen + 1;
                    let jitter = randint(1, 6);
                    let v = scale(data, 10) + jitter;
                    state.log = push(state.log, v);
                    print("saw", data, "->", v);
                    for c in "ab" { state.last_char = c; }
                    if v >= 25 { emit("big", v); } else { emit("small", v); }
                }
            }
        "#;
        let inputs: Vec<Option<Value>> = (1..=5).map(|n| Some(Value::Int(n))).collect();
        let (interp, vm) = run_both(src, "Mix", inputs);
        assert_eq!(interp, vm);
    }

    #[test]
    fn vm_matches_interp_on_errors_and_fuel() {
        let src = "pe F : iterative { input x; output o; process { while true { let a = 1; } } }";
        let script = parse_script(src).unwrap();
        let program = Arc::new(compile_script(&script).unwrap());
        let decl = script.pe("F").unwrap();

        let mut interp = Interp::new(&script, Arc::new(NullHost)).with_fuel(10_000);
        let mut istate = Value::Null;
        let mut isink = VecSink::default();
        let ie = interp.run_process(decl, Some(Value::Int(1)), None, 0, &mut istate, &mut isink).unwrap_err();

        let mut vm = Vm::new(program, Arc::new(NullHost)).with_fuel(10_000);
        let mut vstate = Value::Null;
        let mut vsink = VecSink::default();
        let ve = vm.run_process("F", Some(Value::Int(1)), None, 0, &mut vstate, &mut vsink).unwrap_err();

        assert_eq!(ie.kind, ve.kind);
        assert_eq!(ie.message, ve.message);
        assert_eq!(interp.fuel_remaining(), vm.fuel_remaining());
        assert_eq!(istate, vstate);
    }

    #[test]
    fn dynamic_port_binding_resolves_like_interp() {
        let src = r#"
            pe W : generic {
                input words;
                output output;
                process { emit(words + words); }
            }
        "#;
        let script = parse_script(src).unwrap();
        let program = Arc::new(compile_script(&script).unwrap());
        let mut vm = Vm::new(program, Arc::new(NullHost));
        let mut state = Value::Null;
        let mut sink = VecSink::default();
        vm.run_process("W", Some(Value::Int(4)), Some("words"), 0, &mut state, &mut sink).unwrap();
        // Default-input fallback when no explicit port is given.
        vm.run_process("W", Some(Value::Int(5)), None, 1, &mut state, &mut sink).unwrap();
        let vals: Vec<i64> = sink.port_values().iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        assert_eq!(vals, vec![8, 10]);
    }
}
