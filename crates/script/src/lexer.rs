//! LamScript lexer.
//!
//! Hand-written scanner producing position-tagged tokens. Comments (`#` to
//! end of line) are skipped but *counted*, because the summarizer uses the
//! comment density statistic.

use crate::error::{ErrorKind, ScriptError};

/// Token kinds. Keywords are distinguished from identifiers at lex time.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // Keywords
    Pe,
    Workflow,
    Fn,
    Let,
    If,
    Else,
    While,
    For,
    In,
    Return,
    Break,
    Continue,
    Emit,
    True,
    False,
    Null,
    Import,
    Input,
    Output,
    Init,
    Process,
    Doc,
    Groupby,
    Nodes,
    Connect,
    And,
    Or,
    Not,
    // Punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Arrow,  // ->
    Assign, // =
    Eq,     // ==
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "pe" => TokenKind::Pe,
            "workflow" => TokenKind::Workflow,
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "emit" => TokenKind::Emit,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            "import" => TokenKind::Import,
            "input" => TokenKind::Input,
            "output" => TokenKind::Output,
            "init" => TokenKind::Init,
            "process" => TokenKind::Process,
            "doc" => TokenKind::Doc,
            "groupby" => TokenKind::Groupby,
            "nodes" => TokenKind::Nodes,
            "connect" => TokenKind::Connect,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => return None,
        })
    }
}

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Lexer statistics consumed by `analysis` and the summarizer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LexStats {
    /// Number of `#` comments skipped.
    pub comments: usize,
    /// Total source lines seen.
    pub lines: usize,
}

/// Tokenize `source`, returning tokens (terminated by `Eof`) and stats.
pub fn lex_with_stats(source: &str) -> Result<(Vec<Token>, LexStats), ScriptError> {
    let mut tokens = Vec::new();
    let mut stats = LexStats::default();
    let bytes = source.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token { kind: $kind, line: $l, column: $c })
        };
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        let (tl, tc) = (line, col);
        match b {
            b' ' | b'\t' | b'\r' => {
                pos += 1;
                col += 1;
            }
            b'\n' => {
                pos += 1;
                line += 1;
                col = 1;
            }
            b'#' => {
                stats.comments += 1;
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                push!(TokenKind::LParen, tl, tc);
                pos += 1;
                col += 1;
            }
            b')' => {
                push!(TokenKind::RParen, tl, tc);
                pos += 1;
                col += 1;
            }
            b'{' => {
                push!(TokenKind::LBrace, tl, tc);
                pos += 1;
                col += 1;
            }
            b'}' => {
                push!(TokenKind::RBrace, tl, tc);
                pos += 1;
                col += 1;
            }
            b'[' => {
                push!(TokenKind::LBracket, tl, tc);
                pos += 1;
                col += 1;
            }
            b']' => {
                push!(TokenKind::RBracket, tl, tc);
                pos += 1;
                col += 1;
            }
            b',' => {
                push!(TokenKind::Comma, tl, tc);
                pos += 1;
                col += 1;
            }
            b';' => {
                push!(TokenKind::Semi, tl, tc);
                pos += 1;
                col += 1;
            }
            b':' => {
                push!(TokenKind::Colon, tl, tc);
                pos += 1;
                col += 1;
            }
            b'.' => {
                push!(TokenKind::Dot, tl, tc);
                pos += 1;
                col += 1;
            }
            b'+' => {
                push!(TokenKind::Plus, tl, tc);
                pos += 1;
                col += 1;
            }
            b'*' => {
                push!(TokenKind::Star, tl, tc);
                pos += 1;
                col += 1;
            }
            b'/' => {
                push!(TokenKind::Slash, tl, tc);
                pos += 1;
                col += 1;
            }
            b'%' => {
                push!(TokenKind::Percent, tl, tc);
                pos += 1;
                col += 1;
            }
            b'-' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    push!(TokenKind::Arrow, tl, tc);
                    pos += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Minus, tl, tc);
                    pos += 1;
                    col += 1;
                }
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Eq, tl, tc);
                    pos += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Assign, tl, tc);
                    pos += 1;
                    col += 1;
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ne, tl, tc);
                    pos += 2;
                    col += 2;
                } else {
                    return Err(ScriptError::at(ErrorKind::Lex, "unexpected '!'", tl, tc));
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Le, tl, tc);
                    pos += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, tl, tc);
                    pos += 1;
                    col += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ge, tl, tc);
                    pos += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, tl, tc);
                    pos += 1;
                    col += 1;
                }
            }
            b'"' => {
                let (s, consumed, nl) = lex_string(&bytes[pos..], tl, tc)?;
                push!(TokenKind::Str(s), tl, tc);
                pos += consumed;
                if nl > 0 {
                    line += nl;
                    col = 1; // column tracking after multi-line strings is coarse
                } else {
                    col += consumed;
                }
            }
            b'0'..=b'9' => {
                let (kind, consumed) = lex_number(&bytes[pos..], tl, tc)?;
                push!(kind, tl, tc);
                pos += consumed;
                col += consumed;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                    pos += 1;
                }
                let s = std::str::from_utf8(&bytes[start..pos]).expect("ascii ident");
                let kind = TokenKind::keyword(s).unwrap_or_else(|| TokenKind::Ident(s.to_string()));
                push!(kind, tl, tc);
                col += pos - start;
            }
            other => {
                return Err(ScriptError::at(
                    ErrorKind::Lex,
                    format!("unexpected character '{}'", other as char),
                    tl,
                    tc,
                ));
            }
        }
    }
    stats.lines = line;
    tokens.push(Token { kind: TokenKind::Eof, line, column: col });
    Ok((tokens, stats))
}

/// Tokenize, discarding statistics.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    lex_with_stats(source).map(|(t, _)| t)
}

fn lex_string(bytes: &[u8], line: usize, col: usize) -> Result<(String, usize, usize), ScriptError> {
    debug_assert_eq!(bytes[0], b'"');
    let mut out = String::new();
    let mut i = 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1, newlines)),
            b'\\' => {
                let esc = bytes.get(i + 1).copied().ok_or_else(|| {
                    ScriptError::at(ErrorKind::Lex, "unterminated string escape", line, col)
                })?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    _ => {
                        return Err(ScriptError::at(
                            ErrorKind::Lex,
                            format!("invalid escape '\\{}'", esc as char),
                            line,
                            col,
                        ))
                    }
                }
                i += 2;
            }
            b'\n' => {
                out.push('\n');
                newlines += 1;
                i += 1;
            }
            b if b < 0x80 => {
                out.push(b as char);
                i += 1;
            }
            b => {
                // Multi-byte UTF-8 inside string literals.
                let len = match b {
                    0xC2..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF4 => 4,
                    _ => return Err(ScriptError::at(ErrorKind::Lex, "invalid UTF-8 in string", line, col)),
                };
                if i + len > bytes.len() {
                    return Err(ScriptError::at(ErrorKind::Lex, "truncated UTF-8 in string", line, col));
                }
                let s = std::str::from_utf8(&bytes[i..i + len])
                    .map_err(|_| ScriptError::at(ErrorKind::Lex, "invalid UTF-8 in string", line, col))?;
                out.push_str(s);
                i += len;
            }
        }
    }
    Err(ScriptError::at(ErrorKind::Lex, "unterminated string literal", line, col))
}

fn lex_number(bytes: &[u8], line: usize, col: usize) -> Result<(TokenKind, usize), ScriptError> {
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = std::str::from_utf8(&bytes[..i]).expect("ascii number");
    if is_float {
        let f: f64 =
            text.parse().map_err(|_| ScriptError::at(ErrorKind::Lex, "invalid float literal", line, col))?;
        Ok((TokenKind::Float(f), i))
    } else {
        let n: i64 = text
            .parse()
            .map_err(|_| ScriptError::at(ErrorKind::Lex, "integer literal out of range", line, col))?;
        Ok((TokenKind::Int(n), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn scalars_and_operators() {
        assert_eq!(
            kinds("1 + 2.5 * x != y"),
            vec![
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Float(2.5),
                TokenKind::Star,
                TokenKind::Ident("x".into()),
                TokenKind::Ne,
                TokenKind::Ident("y".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            kinds("pe peer let letter"),
            vec![
                TokenKind::Pe,
                TokenKind::Ident("peer".into()),
                TokenKind::Let,
                TokenKind::Ident("letter".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\n\"b\"" "unicode ∆""#),
            vec![TokenKind::Str("a\n\"b\"".into()), TokenKind::Str("unicode ∆".into()), TokenKind::Eof,]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a -> b - c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Minus,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_counted() {
        let (toks, stats) = lex_with_stats("# header\nlet x = 1; # trailing\n").unwrap();
        assert_eq!(stats.comments, 2);
        assert_eq!(toks[0].kind, TokenKind::Let);
    }

    #[test]
    fn positions() {
        let toks = lex("let x =\n  42;").unwrap();
        let x = &toks[1];
        assert_eq!((x.line, x.column), (1, 5));
        let n = toks.iter().find(|t| t.kind == TokenKind::Int(42)).unwrap();
        assert_eq!((n.line, n.column), (2, 3));
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(kinds("1.5e3")[0], TokenKind::Float(1500.0));
        assert_eq!(kinds("10e-1")[0], TokenKind::Float(1.0));
        // Dot not followed by digit is a Dot token (method access).
        assert_eq!(
            kinds("1.foo"),
            vec![TokenKind::Int(1), TokenKind::Dot, TokenKind::Ident("foo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("let x = \"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("€").is_err());
        assert!(lex("99999999999999999999999999").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }
}
