//! AST → register-bytecode compiler for LamScript.
//!
//! The tree-walking [`crate::interp::Interp`] re-traverses the AST and
//! re-resolves every identifier per `process` invocation — the innermost
//! loop of every enactment. This module lowers a parsed [`Script`] once into
//! a compact register machine ([`Program`]) that the [`crate::vm::Vm`]
//! executes:
//!
//! * variables the compiler can see (`state`, `input`, `let` bindings,
//!   function parameters) become fixed register slots — no per-invocation
//!   `HashMap` lookups;
//! * literals are interned in a per-chunk constant pool;
//! * call targets are classified at compile time in the interpreter's
//!   dispatch order (`print` → RNG builtins → user functions → builtin
//!   table → host), so dispatch is a direct instruction;
//! * `emit`/`print` are fused instructions that hand `Value`s straight to
//!   the [`crate::interp::Sink`].
//!
//! The lowering is *semantics-preserving by construction*: fuel is burned by
//! explicit [`Instr::Fuel`] instructions (and fused into the leaf loads)
//! in exactly the order the interpreter burns it, runtime checks (call
//! depth, arity, undeclared ports) stay runtime checks with the
//! interpreter's error kinds and messages, and names the compiler cannot
//! resolve (the datum's per-invocation port binding) fall back to
//! [`Instr::Dynamic`] lookups. `tests/proptest_vm.rs` differential-tests
//! the VM against the interpreter over generated programs.
//!
//! Compiled programs are cached process-wide, keyed by the canonical
//! pretty-printed source ([`source_hash`]), so a PE registered once is
//! compiled once and every engine fork reuses the same `Arc<Program>`.

use crate::ast::*;
use crate::error::{ErrorKind, ScriptError};
use laminar_json::Value;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// RNG-backed builtins that consume the VM's seeded generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandKind {
    /// `randint(a, b)` — inclusive integer range.
    Randint,
    /// `random()` — float in `[0, 1)`.
    Random,
    /// `shuffle(list)` — Fisher-Yates.
    Shuffle,
}

/// One accessor step of a compiled assignment path (`x[i].f = v`).
#[derive(Debug, Clone, Copy)]
pub enum PathAcc {
    /// Field access; index into [`Chunk::names`].
    Field(u16),
    /// Index access; the register holding the evaluated index value.
    Index(u16),
}

/// Bytecode instructions. Registers (`dst`, `src`, …) are frame-relative
/// slots; `line` mirrors the AST node's source line for error parity with
/// the interpreter.
#[derive(Debug, Clone, Copy)]
pub enum Instr {
    /// Burn one fuel unit (statement/operator entry).
    Fuel { line: u32 },
    /// `dst = consts[idx]` (burns one unit: literal evaluation).
    Const { dst: u16, idx: u16 },
    /// `dst = regs[slot]` (burns one unit: variable evaluation).
    Local { dst: u16, slot: u16, line: u32 },
    /// Lookup of a name the compiler could not resolve: the datum's
    /// per-invocation port binding, else `NameError` (burns one unit).
    Dynamic { dst: u16, name: u16, line: u32 },
    /// `regs[slot] = take(regs[src])`.
    StoreLocal { slot: u16, src: u16 },
    /// Assign to the dynamic port binding, else `NameError`.
    StoreDynamic { name: u16, src: u16 },
    /// Assignment through an accessor path rooted at a local slot
    /// (`root_local`) or the dynamic binding.
    StorePath { root_local: bool, root: u16, path_start: u16, path_len: u16, src: u16 },
    /// `dst = [regs[start..start+n]]`.
    MakeList { dst: u16, start: u16, n: u16 },
    /// `dst = {names[keys_start+i]: regs[start+i]}`.
    MakeMap { dst: u16, keys_start: u16, start: u16, n: u16 },
    /// `dst = a <op> b` (non-logical operators).
    Bin { op: BinOp, dst: u16, a: u16, b: u16, line: u32 },
    /// Arithmetic negation in place.
    Neg { dst: u16 },
    /// Logical not in place.
    Not { dst: u16 },
    /// `dst = Bool(truthy(dst))`.
    Truthy { dst: u16 },
    /// Unconditional jump.
    Jump { to: u32 },
    /// Jump when `regs[cond]` is falsy.
    JumpIfFalse { cond: u16, to: u32 },
    /// Jump when `regs[cond]` is truthy.
    JumpIfTrue { cond: u16, to: u32 },
    /// `dst = regs[obj][regs[idx]]` (consumes both operands).
    IndexGet { dst: u16, obj: u16, idx: u16 },
    /// `dst = regs[obj].names[name]` (consumes the object).
    FieldGet { dst: u16, obj: u16, name: u16, line: u32 },
    /// Call user function `fns[fidx]` with `regs[start..start+argc]`.
    CallFn { dst: u16, fidx: u16, start: u16, argc: u16, line: u32 },
    /// Call a builtin-table function (`module == u16::MAX` means
    /// unqualified).
    CallBuiltin { dst: u16, module: u16, name: u16, start: u16, argc: u16, line: u32 },
    /// Call a host function `names[module].names[name]`.
    CallHost { dst: u16, module: u16, name: u16, start: u16, argc: u16 },
    /// Fused `print(...)`: join args, hand to the sink, `dst = null`.
    Print { dst: u16, start: u16, argc: u16 },
    /// RNG builtin drawing from the VM's seeded generator.
    Rand { dst: u16, kind: RandKind, start: u16, argc: u16 },
    /// Fused `emit(v)` to the chunk's default output port.
    EmitDefault { src: u16 },
    /// Fused `emit(port, v)` to a declared output port.
    EmitPort { name: u16, src: u16 },
    /// Materialize `regs[src]` into an iterator for a `for` loop.
    ForPrep { src: u16 },
    /// Advance the innermost iterator: write the item to `slot` (burning
    /// the per-item unit) or pop the iterator and jump to `exit`.
    ForNext { slot: u16, exit: u32 },
    /// Discard the innermost iterator (`break` out of a `for`).
    PopIter,
    /// Return `take(regs[src])` from the chunk.
    Return { src: u16 },
    /// Return `null` (bare `return;` — no expression, no extra burn).
    ReturnNull,
    /// Raise the precomputed error `errors[idx]`.
    Raise { idx: u16 },
    /// End of chunk: return `null`.
    End,
}

/// A compiled function body, `init` block, or `process` block.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Function name (used in arity-error messages); empty for PE chunks.
    pub name: String,
    /// Parameter count (function chunks).
    pub arity: usize,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Interned names: fields, ports, dynamic vars, map keys, call targets.
    pub names: Vec<String>,
    /// Assignment path accessors (referenced by [`Instr::StorePath`]).
    pub paths: Vec<PathAcc>,
    /// Precomputed errors (referenced by [`Instr::Raise`]).
    pub errors: Vec<ScriptError>,
    /// Frame size: number of registers this chunk needs.
    pub n_regs: u16,
    /// Default output port for fused `emit` (process chunks only).
    pub default_output: Option<String>,
}

/// A compiled PE: optional `init` plus the `process` body.
#[derive(Debug, Clone)]
pub struct PeProgram {
    /// Compiled `init { ... }` block, when declared.
    pub init: Option<Chunk>,
    /// Compiled `process { ... }` body.
    pub process: Chunk,
    /// Declared default input port (the datum's fallback binding name).
    pub default_input: Option<String>,
}

/// A fully compiled script: shared function table plus per-PE chunks.
#[derive(Debug, Clone)]
pub struct Program {
    /// User functions in first-declaration order (later same-name
    /// declarations overwrite in place, like the interpreter's map).
    pub fns: Vec<Chunk>,
    /// Compiled PEs by name (first declaration wins, like `Script::pe`).
    pub pes: HashMap<String, PeProgram>,
}

fn too_large() -> ScriptError {
    ScriptError::new(ErrorKind::Parse, "program too large to compile")
}

fn u16x(n: usize) -> Result<u16, ScriptError> {
    u16::try_from(n).map_err(|_| too_large())
}

fn u32x(n: usize) -> Result<u32, ScriptError> {
    u32::try_from(n).map_err(|_| too_large())
}

/// Compile a whole script. The only compile-time failures are size
/// overflows (register/constant/name pools beyond `u16`), reported as
/// [`ErrorKind::Parse`] so callers can fall back to the interpreter.
pub fn compile_script(script: &Script) -> Result<Program, ScriptError> {
    // Function table: first-declaration index order, later decl wins in
    // place (the interpreter's HashMap insert-overwrite has the same
    // visible effect).
    let mut fn_index: HashMap<String, u16> = HashMap::new();
    let mut decls: Vec<&FnDecl> = Vec::new();
    for item in &script.items {
        if let Item::Fn(f) = item {
            match fn_index.get(&f.name) {
                Some(&i) => decls[i as usize] = f,
                None => {
                    fn_index.insert(f.name.clone(), u16x(decls.len())?);
                    decls.push(f);
                }
            }
        }
    }
    let mut fns = Vec::with_capacity(decls.len());
    for f in &decls {
        let mut lw = Lowerer::new(&f.name, f.params.len(), None, &[], &fn_index);
        for p in &f.params {
            let slot = lw.alloc()?;
            lw.define(p, slot);
        }
        lw.block(&f.body)?;
        fns.push(lw.finish());
    }
    let mut pes = HashMap::new();
    for pe in script.pes() {
        if pes.contains_key(&pe.name) {
            continue; // Script::pe finds the first declaration.
        }
        pes.insert(pe.name.clone(), compile_pe(pe, &fn_index)?);
    }
    Ok(Program { fns, pes })
}

fn compile_pe(pe: &PeDecl, fn_index: &HashMap<String, u16>) -> Result<PeProgram, ScriptError> {
    // `init` runs with no emit context (the interpreter uses an empty
    // PeCtx there): only `state` is pre-bound.
    let init = match &pe.init {
        Some(block) => {
            let mut lw = Lowerer::new("", 0, None, &[], fn_index);
            let slot = lw.alloc()?;
            lw.define("state", slot);
            lw.block(block)?;
            Some(lw.finish())
        }
        None => None,
    };
    // `process` pre-binds the interpreter's root scope: state, input,
    // input_port, iteration (slots 0-3). The port-named datum alias is a
    // runtime binding (the port is only known per invocation) and resolves
    // through Dynamic instructions.
    let mut lw = Lowerer::new("", 0, pe.default_output().map(str::to_string), &pe.outputs, fn_index);
    for name in ["state", "input", "input_port", "iteration"] {
        let slot = lw.alloc()?;
        lw.define(name, slot);
    }
    lw.block(&pe.process)?;
    Ok(PeProgram { init, process: lw.finish(), default_input: pe.default_input().map(str::to_string) })
}

struct Scope {
    vars: Vec<(String, u16)>,
    saved_next: u16,
}

struct LoopFrame {
    head: usize,
    breaks: Vec<usize>,
    is_for: bool,
}

struct Lowerer<'a> {
    chunk: Chunk,
    scopes: Vec<Scope>,
    next_reg: u16,
    max_reg: u16,
    fn_index: &'a HashMap<String, u16>,
    loops: Vec<LoopFrame>,
    /// `break`/`continue` outside any loop terminate the chunk (the
    /// interpreter propagates the flow out of the body); patched to End.
    end_jumps: Vec<usize>,
    outputs: &'a [String],
    err: Option<ScriptError>,
}

enum CallKind {
    Print,
    Rand(RandKind),
    User(u16),
    Builtin,
    Host,
    Unknown,
}

impl<'a> Lowerer<'a> {
    fn new(
        name: &str,
        arity: usize,
        default_output: Option<String>,
        outputs: &'a [String],
        fn_index: &'a HashMap<String, u16>,
    ) -> Self {
        Lowerer {
            chunk: Chunk {
                name: name.to_string(),
                arity,
                instrs: Vec::new(),
                consts: Vec::new(),
                names: Vec::new(),
                paths: Vec::new(),
                errors: Vec::new(),
                n_regs: 0,
                default_output,
            },
            scopes: vec![Scope { vars: Vec::new(), saved_next: 0 }],
            next_reg: 0,
            max_reg: 0,
            fn_index,
            loops: Vec::new(),
            end_jumps: Vec::new(),
            outputs,
            err: None,
        }
    }

    fn finish(mut self) -> Chunk {
        let end = self.chunk.instrs.len();
        self.emit(Instr::End);
        for at in std::mem::take(&mut self.end_jumps) {
            self.patch(at, end);
        }
        self.chunk.n_regs = self.max_reg;
        self.chunk
    }

    // ---- registers and scopes ------------------------------------------

    fn alloc(&mut self) -> Result<u16, ScriptError> {
        if self.next_reg == u16::MAX {
            return Err(too_large());
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        Ok(r)
    }

    fn push_scope(&mut self) {
        self.scopes.push(Scope { vars: Vec::new(), saved_next: self.next_reg });
    }

    fn pop_scope(&mut self) {
        let s = self.scopes.pop().expect("scope underflow");
        self.next_reg = s.saved_next;
    }

    fn define(&mut self, name: &str, slot: u16) {
        self.scopes.last_mut().expect("at least one scope").vars.push((name.to_string(), slot));
    }

    /// Innermost-scope-first, latest-binding-first — mirrors the
    /// interpreter's `Env::lookup` over insert-overwrite maps.
    fn resolve(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.vars.iter().rev().find(|(n, _)| n == name).map(|(_, slot)| *slot))
    }

    // ---- pools ---------------------------------------------------------

    fn add_const(&mut self, v: Value) -> Result<u16, ScriptError> {
        // Bit-exact float comparison: f64 PartialEq would conflate 0.0 and
        // -0.0 (and never dedup NaN, which is fine either way).
        let eq = |a: &Value, b: &Value| match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        };
        if let Some(i) = self.chunk.consts.iter().position(|c| eq(c, &v)) {
            return u16x(i);
        }
        let i = u16x(self.chunk.consts.len())?;
        self.chunk.consts.push(v);
        Ok(i)
    }

    fn add_name(&mut self, name: &str) -> Result<u16, ScriptError> {
        if let Some(i) = self.chunk.names.iter().position(|n| n == name) {
            return u16x(i);
        }
        self.add_name_raw(name)
    }

    /// Append without dedup — map-literal key runs must stay contiguous.
    fn add_name_raw(&mut self, name: &str) -> Result<u16, ScriptError> {
        let i = u16x(self.chunk.names.len())?;
        self.chunk.names.push(name.to_string());
        Ok(i)
    }

    fn add_error(&mut self, e: ScriptError) -> Result<u16, ScriptError> {
        let i = u16x(self.chunk.errors.len())?;
        self.chunk.errors.push(e);
        Ok(i)
    }

    // ---- instruction stream --------------------------------------------

    fn emit(&mut self, i: Instr) -> usize {
        self.chunk.instrs.push(i);
        self.chunk.instrs.len() - 1
    }

    fn patch(&mut self, at: usize, to: usize) {
        let Ok(to32) = u32::try_from(to) else {
            self.err.get_or_insert(too_large());
            return;
        };
        match &mut self.chunk.instrs[at] {
            Instr::Jump { to }
            | Instr::JumpIfFalse { to, .. }
            | Instr::JumpIfTrue { to, .. }
            | Instr::ForNext { exit: to, .. } => *to = to32,
            other => unreachable!("patch target is not a jump: {other:?}"),
        }
    }

    fn here(&self) -> usize {
        self.chunk.instrs.len()
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self, b: &Block) -> Result<(), ScriptError> {
        self.push_scope();
        let r = self.stmts(&b.stmts);
        self.pop_scope();
        r
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), ScriptError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ScriptError> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        // Statement-entry burn, matching Interp::exec_stmt.
        self.emit(Instr::Fuel { line: 0 });
        let mark = self.next_reg;
        match s {
            Stmt::Let { name, value } => {
                // The slot is allocated before the value is lowered, but the
                // name is defined only after: `let x = x + 1;` still sees
                // the outer (or dynamic) `x`, like the interpreter.
                let slot = self.alloc()?;
                self.expr(value, slot)?;
                self.define(name, slot);
                self.next_reg = slot + 1;
                return Ok(());
            }
            Stmt::Assign { target, value } => {
                let v = self.alloc()?;
                self.expr(value, v)?;
                self.assign(target, v)?;
            }
            Stmt::If { cond, then_block, else_block } => {
                let t = self.alloc()?;
                self.expr(cond, t)?;
                let jf = self.emit(Instr::JumpIfFalse { cond: t, to: u32::MAX });
                self.next_reg = mark;
                self.block(then_block)?;
                match else_block {
                    Some(e) => {
                        let jend = self.emit(Instr::Jump { to: u32::MAX });
                        let here = self.here();
                        self.patch(jf, here);
                        self.block(e)?;
                        let here = self.here();
                        self.patch(jend, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jf, here);
                    }
                }
            }
            Stmt::While { cond, body } => {
                // Loop-head burn: the interpreter burns one unit per
                // condition check (`loop { burn; cond; ... }`).
                let head = self.here();
                self.emit(Instr::Fuel { line: 0 });
                let t = self.alloc()?;
                self.expr(cond, t)?;
                let jf = self.emit(Instr::JumpIfFalse { cond: t, to: u32::MAX });
                self.next_reg = mark;
                self.loops.push(LoopFrame { head, breaks: Vec::new(), is_for: false });
                self.block(body)?;
                self.emit(Instr::Jump { to: u32x(head)? });
                let frame = self.loops.pop().expect("loop frame");
                let exit = self.here();
                self.patch(jf, exit);
                for b in frame.breaks {
                    self.patch(b, exit);
                }
            }
            Stmt::For { var, iter, body } => {
                let t = self.alloc()?;
                self.expr(iter, t)?;
                self.emit(Instr::ForPrep { src: t });
                self.next_reg = mark;
                // One scope holds the loop variable and the body's `let`s,
                // mirroring exec_stmt's push/define/exec_stmts shape.
                self.push_scope();
                let slot = self.alloc()?;
                self.define(var, slot);
                let head = self.here();
                let fnext = self.emit(Instr::ForNext { slot, exit: u32::MAX });
                self.loops.push(LoopFrame { head, breaks: Vec::new(), is_for: true });
                self.stmts(&body.stmts)?;
                self.emit(Instr::Jump { to: u32x(head)? });
                let frame = self.loops.pop().expect("loop frame");
                let exit = self.here();
                self.patch(fnext, exit);
                for b in frame.breaks {
                    self.patch(b, exit);
                }
                self.pop_scope();
            }
            Stmt::Return(e) => match e {
                Some(e) => {
                    let t = self.alloc()?;
                    self.expr(e, t)?;
                    self.emit(Instr::Return { src: t });
                }
                None => {
                    self.emit(Instr::ReturnNull);
                }
            },
            Stmt::Break => match self.loops.last() {
                Some(frame) => {
                    if frame.is_for {
                        self.emit(Instr::PopIter);
                    }
                    let j = self.emit(Instr::Jump { to: u32::MAX });
                    self.loops.last_mut().expect("loop frame").breaks.push(j);
                }
                None => {
                    let j = self.emit(Instr::Jump { to: u32::MAX });
                    self.end_jumps.push(j);
                }
            },
            Stmt::Continue => match self.loops.last() {
                Some(frame) => {
                    let head = frame.head;
                    self.emit(Instr::Jump { to: u32x(head)? });
                }
                None => {
                    let j = self.emit(Instr::Jump { to: u32::MAX });
                    self.end_jumps.push(j);
                }
            },
            Stmt::Emit(e) => {
                let t = self.alloc()?;
                self.expr(e, t)?;
                match self.chunk.default_output.is_some() {
                    true => {
                        self.emit(Instr::EmitDefault { src: t });
                    }
                    false => {
                        // Evaluated, then rejected — interpreter order.
                        let idx = self.add_error(ScriptError::new(
                            ErrorKind::ContextError,
                            "emit() used in a PE without output ports",
                        ))?;
                        self.emit(Instr::Raise { idx });
                    }
                }
            }
            Stmt::EmitTo { port, value } => {
                if self.outputs.iter().any(|p| p == port) {
                    let t = self.alloc()?;
                    self.expr(value, t)?;
                    let name = self.add_name(port)?;
                    self.emit(Instr::EmitPort { name, src: t });
                } else {
                    // Rejected before evaluation — interpreter order.
                    let idx = self.add_error(ScriptError::new(
                        ErrorKind::ContextError,
                        format!("emit to undeclared output port '{port}'"),
                    ))?;
                    self.emit(Instr::Raise { idx });
                }
            }
            Stmt::ExprStmt(e) => {
                let t = self.alloc()?;
                self.expr(e, t)?;
            }
        }
        self.next_reg = mark;
        Ok(())
    }

    /// Lower `target = regs[v]`. The value is already evaluated; accessor
    /// index expressions evaluate here, outermost-first, exactly like
    /// `Interp::assign`'s walk.
    fn assign(&mut self, target: &Expr, v: u16) -> Result<(), ScriptError> {
        enum CAcc<'e> {
            Index(u16),
            Field(&'e str),
        }
        let mut accs: Vec<CAcc<'_>> = Vec::new();
        let mut cur = target;
        let root = loop {
            match cur {
                Expr::Var { name, .. } => break name,
                Expr::Index { base, index, .. } => {
                    let r = self.alloc()?;
                    self.expr(index, r)?;
                    accs.push(CAcc::Index(r));
                    cur = base;
                }
                Expr::Field { base, field, .. } => {
                    accs.push(CAcc::Field(field));
                    cur = base;
                }
                _ => {
                    // The parser never produces this; kept for parity with
                    // the interpreter's defensive arm.
                    let idx =
                        self.add_error(ScriptError::new(ErrorKind::TypeError, "invalid assignment target"))?;
                    self.emit(Instr::Raise { idx });
                    return Ok(());
                }
            }
        };
        accs.reverse(); // walk order → application order
        if accs.is_empty() {
            match self.resolve(root) {
                Some(slot) => {
                    self.emit(Instr::StoreLocal { slot, src: v });
                }
                None => {
                    let name = self.add_name(root)?;
                    self.emit(Instr::StoreDynamic { name, src: v });
                }
            }
            return Ok(());
        }
        let path_start = u16x(self.chunk.paths.len())?;
        let path_len = u16x(accs.len())?;
        for acc in accs {
            let p = match acc {
                CAcc::Index(r) => PathAcc::Index(r),
                CAcc::Field(f) => PathAcc::Field(self.add_name(f)?),
            };
            self.chunk.paths.push(p);
        }
        let (root_local, root) = match self.resolve(root) {
            Some(slot) => (true, slot),
            None => (false, self.add_name(root)?),
        };
        self.emit(Instr::StorePath { root_local, root, path_start, path_len, src: v });
        Ok(())
    }

    // ---- expressions ---------------------------------------------------

    /// Lower `e`, leaving its value in `dst`. Temporaries are allocated
    /// above the current high-mark and released before returning.
    fn expr(&mut self, e: &Expr, dst: u16) -> Result<(), ScriptError> {
        let mark = self.next_reg;
        match e {
            Expr::Int(n) => {
                let idx = self.add_const(Value::Int(*n))?;
                self.emit(Instr::Const { dst, idx });
            }
            Expr::Float(f) => {
                let idx = self.add_const(Value::Float(*f))?;
                self.emit(Instr::Const { dst, idx });
            }
            Expr::Str(s) => {
                let idx = self.add_const(Value::Str(s.clone()))?;
                self.emit(Instr::Const { dst, idx });
            }
            Expr::Bool(b) => {
                let idx = self.add_const(Value::Bool(*b))?;
                self.emit(Instr::Const { dst, idx });
            }
            Expr::Null => {
                let idx = self.add_const(Value::Null)?;
                self.emit(Instr::Const { dst, idx });
            }
            Expr::Var { name, line } => {
                let line = u32x(*line)?;
                match self.resolve(name) {
                    Some(slot) => {
                        self.emit(Instr::Local { dst, slot, line });
                    }
                    None => {
                        let name = self.add_name(name)?;
                        self.emit(Instr::Dynamic { dst, name, line });
                    }
                }
            }
            Expr::List(items) => {
                self.emit(Instr::Fuel { line: 0 });
                let start = self.next_reg;
                for item in items {
                    let r = self.alloc()?;
                    self.expr(item, r)?;
                }
                self.emit(Instr::MakeList { dst, start, n: u16x(items.len())? });
            }
            Expr::MapLit(pairs) => {
                self.emit(Instr::Fuel { line: 0 });
                // Keys must be a contiguous run, so bypass name dedup.
                let keys_start = u16x(self.chunk.names.len())?;
                let start = self.next_reg;
                for (k, _) in pairs {
                    self.add_name_raw(k)?;
                }
                for (_, e) in pairs {
                    let r = self.alloc()?;
                    self.expr(e, r)?;
                }
                self.emit(Instr::MakeMap { dst, keys_start, start, n: u16x(pairs.len())? });
            }
            Expr::Unary { op, operand, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                self.expr(operand, dst)?;
                match op {
                    UnOp::Neg => self.emit(Instr::Neg { dst }),
                    UnOp::Not => self.emit(Instr::Not { dst }),
                };
            }
            Expr::Binary { op: op @ (BinOp::And | BinOp::Or), lhs, rhs, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                self.expr(lhs, dst)?;
                self.emit(Instr::Truthy { dst });
                let j = match op {
                    BinOp::And => self.emit(Instr::JumpIfFalse { cond: dst, to: u32::MAX }),
                    _ => self.emit(Instr::JumpIfTrue { cond: dst, to: u32::MAX }),
                };
                self.expr(rhs, dst)?;
                self.emit(Instr::Truthy { dst });
                let here = self.here();
                self.patch(j, here);
            }
            Expr::Binary { op, lhs, rhs, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                let a = self.alloc()?;
                self.expr(lhs, a)?;
                let b = self.alloc()?;
                self.expr(rhs, b)?;
                self.emit(Instr::Bin { op: *op, dst, a, b, line: u32x(*line)? });
            }
            Expr::Index { base, index, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                let obj = self.alloc()?;
                self.expr(base, obj)?;
                let idx = self.alloc()?;
                self.expr(index, idx)?;
                self.emit(Instr::IndexGet { dst, obj, idx });
            }
            Expr::Field { base, field, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                let obj = self.alloc()?;
                self.expr(base, obj)?;
                let name = self.add_name(field)?;
                self.emit(Instr::FieldGet { dst, obj, name, line: u32x(*line)? });
            }
            Expr::Call { module, name, args, line } => {
                self.emit(Instr::Fuel { line: u32x(*line)? });
                let start = self.next_reg;
                for a in args {
                    let r = self.alloc()?;
                    self.expr(a, r)?;
                }
                let argc = u16x(args.len())?;
                let line32 = u32x(*line)?;
                match self.classify(module.as_deref(), name) {
                    CallKind::Print => {
                        self.emit(Instr::Print { dst, start, argc });
                    }
                    CallKind::Rand(kind) => {
                        self.emit(Instr::Rand { dst, kind, start, argc });
                    }
                    CallKind::User(fidx) => {
                        self.emit(Instr::CallFn { dst, fidx, start, argc, line: line32 });
                    }
                    CallKind::Builtin => {
                        let m = match module {
                            Some(m) => self.add_name(m)?,
                            None => u16::MAX,
                        };
                        let n = self.add_name(name)?;
                        self.emit(Instr::CallBuiltin { dst, module: m, name: n, start, argc, line: line32 });
                    }
                    CallKind::Host => {
                        let m = self.add_name(module.as_deref().expect("host call has module"))?;
                        let n = self.add_name(name)?;
                        self.emit(Instr::CallHost { dst, module: m, name: n, start, argc });
                    }
                    CallKind::Unknown => {
                        // Arguments evaluate first, then the lookup fails —
                        // interpreter order.
                        let idx = self.add_error(ScriptError::at(
                            ErrorKind::NameError,
                            format!("unknown function '{name}'"),
                            *line,
                            0,
                        ))?;
                        self.emit(Instr::Raise { idx });
                    }
                }
            }
        }
        self.next_reg = mark;
        Ok(())
    }

    /// Compile-time call classification, in `Interp::call`'s dispatch
    /// order. The function table and builtin set are fixed for a program,
    /// so this is exactly the decision the interpreter would make per
    /// invocation.
    fn classify(&self, module: Option<&str>, name: &str) -> CallKind {
        if module.is_none() && name == "print" {
            return CallKind::Print;
        }
        if module.is_none() || module == Some("random") {
            match name {
                "randint" => return CallKind::Rand(RandKind::Randint),
                "random" => return CallKind::Rand(RandKind::Random),
                "shuffle" => return CallKind::Rand(RandKind::Shuffle),
                _ => {}
            }
        }
        if module.is_none() {
            if let Some(&i) = self.fn_index.get(name) {
                return CallKind::User(i);
            }
        }
        // Probe the builtin table with no arguments: every arm matches the
        // name first, so presence is argument-independent.
        if crate::builtins::call(module, name, &[]).is_some() {
            return CallKind::Builtin;
        }
        if module.is_some() {
            return CallKind::Host;
        }
        CallKind::Unknown
    }
}

// ---- process-wide compile cache ---------------------------------------

type CacheMap = HashMap<u64, Vec<(String, Arc<Program>)>>;

static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Hash of a canonical (pretty-printed) source — the compile-cache key.
pub fn source_hash(canonical: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write(canonical.as_bytes());
    h.finish()
}

/// Compile or return the cached program for `canonical` (which must be
/// `pretty::to_source` output; the round-trip property test pins that
/// canonicalization is stable). On a miss the canonical text itself is
/// parsed and compiled, so the cached program — including the source line
/// numbers baked into its error tables — is a pure function of the cache
/// key, not of whichever formatting variant reached the cache first.
pub fn shared(canonical: &str) -> Result<Arc<Program>, ScriptError> {
    let key = source_hash(canonical);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let guard = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entries) = guard.get(&key) {
            for (src, program) in entries {
                if src == canonical {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(program));
                }
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let canonical_script = crate::parser::parse_script(canonical)?;
    let program = Arc::new(compile_script(&canonical_script)?);
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    let entries = guard.entry(key).or_default();
    // Another thread may have compiled the same source concurrently; keep
    // one entry per canonical text.
    if !entries.iter().any(|(src, _)| src == canonical) {
        entries.push((canonical.to_string(), Arc::clone(&program)));
    }
    Ok(program)
}

/// Alias for [`shared`] named for its call site: the registry warms the
/// cache at PE-registration time so engine forks start hot.
pub fn warm(canonical: &str) -> Result<Arc<Program>, ScriptError> {
    shared(canonical)
}

/// `(hits, misses)` of the process-wide compile cache.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    #[test]
    fn compiles_representative_pe() {
        let src = r#"
            fn fact(n) { if n <= 1 { return 1; } return n * fact(n - 1); }
            pe P : iterative {
                input num;
                output output;
                init { state.count = 0; }
                process {
                    let x = num;
                    while x > 0 { x = x - 1; }
                    for c in [1, 2, 3] { state.count = state.count + c; }
                    emit(fact(num));
                }
            }
        "#;
        let script = parse_script(src).unwrap();
        let program = compile_script(&script).unwrap();
        assert_eq!(program.fns.len(), 1);
        assert_eq!(program.fns[0].name, "fact");
        assert_eq!(program.fns[0].arity, 1);
        let pe = program.pes.get("P").unwrap();
        assert!(pe.init.is_some());
        assert!(pe.process.n_regs >= 4);
        assert_eq!(pe.process.default_output.as_deref(), Some("output"));
        assert_eq!(pe.default_input.as_deref(), Some("num"));
    }

    #[test]
    fn cache_hits_on_same_canonical_source() {
        let src = "pe CacheProbe : iterative { input x; output o; process { emit(x); } }";
        let script = parse_script(src).unwrap();
        let canonical = crate::pretty::to_source(&script);
        let a = shared(&canonical).unwrap();
        let (_, m0) = cache_stats();
        let b = shared(&canonical).unwrap();
        let (_, m1) = cache_stats();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(m0, m1, "second lookup must not recompile");
        // A formatting variant of the same program shares the entry.
        let variant = "pe CacheProbe : iterative {\n  input x;\n  output o;\n  process { emit(x); }\n}";
        assert_eq!(crate::canonicalize(variant).unwrap(), canonical);
        let c = shared(&canonical).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn oversized_program_fails_with_parse_error() {
        // 70k `let`s overflow the u16 register file (the constant dedups).
        let mut body = String::from("pe Big : iterative { input x; output o; process {");
        for i in 0..70_000 {
            body.push_str(&format!("let v{i} = 0;"));
        }
        body.push_str("} }");
        let script = parse_script(&body).unwrap();
        let err = compile_script(&script).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }
}
