//! LamScript abstract syntax tree.
//!
//! The AST is the shared currency of the crate: the interpreter walks it,
//! the pretty-printer re-emits canonical source from it, `analysis` mines it
//! for imports / identifiers / def-use edges, and the summarizer in
//! `laminar-embed` generates PE descriptions from it.

/// A parsed source file: a sequence of top-level items.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Script {
    /// All PE declarations in the script.
    pub fn pes(&self) -> impl Iterator<Item = &PeDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Pe(p) => Some(p),
            _ => None,
        })
    }

    /// All workflow declarations in the script.
    pub fn workflows(&self) -> impl Iterator<Item = &WorkflowDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Workflow(w) => Some(w),
            _ => None,
        })
    }

    /// Find a PE by name.
    pub fn pe(&self, name: &str) -> Option<&PeDecl> {
        self.pes().find(|p| p.name == name)
    }
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `import foo.bar;`
    Import(Vec<String>),
    /// `fn name(params) { ... }` — free helper function.
    Fn(FnDecl),
    /// `pe Name : kind { ... }`
    Pe(PeDecl),
    /// `workflow Name { ... }`
    Workflow(WorkflowDecl),
}

/// A helper function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Block,
}

/// The four PE archetypes of dispel4py (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// One output port, no inputs; driven by iteration count.
    Producer,
    /// One input, one output.
    Iterative,
    /// One input, no outputs.
    Consumer,
    /// Any number of ports, fully custom.
    Generic,
}

impl PeKind {
    /// Parse from the source keyword (named like [`crate::parse_script`]'s
    /// helpers rather than `FromStr` because it returns an `Option`).
    pub fn parse(s: &str) -> Option<PeKind> {
        Some(match s {
            "producer" => PeKind::Producer,
            "iterative" => PeKind::Iterative,
            "consumer" => PeKind::Consumer,
            "generic" => PeKind::Generic,
            _ => return None,
        })
    }

    /// Source keyword for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            PeKind::Producer => "producer",
            PeKind::Iterative => "iterative",
            PeKind::Consumer => "consumer",
            PeKind::Generic => "generic",
        }
    }
}

/// An input-port declaration, optionally with a group-by key
/// (`input words groupby 0;` routes tuples with equal `[0]` to one instance).
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// `Some(index)` if the port declared `groupby <index>`.
    pub groupby: Option<usize>,
}

/// A PE declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PeDecl {
    /// Class name (e.g. `NumberProducer`).
    pub name: String,
    /// Archetype.
    pub kind: PeKind,
    /// Optional `doc "..."` description.
    pub doc: Option<String>,
    /// Declared library imports (drive the engine's auto-install).
    pub imports: Vec<Vec<String>>,
    /// Input ports in declaration order.
    pub inputs: Vec<PortDecl>,
    /// Output port names in declaration order.
    pub outputs: Vec<String>,
    /// Optional `init { ... }` block run once per instance.
    pub init: Option<Block>,
    /// The `process { ... }` body run per datum (or per iteration for
    /// producers).
    pub process: Block,
}

impl PeDecl {
    /// Name of the default output port (`emit(v)` targets this).
    pub fn default_output(&self) -> Option<&str> {
        self.outputs.first().map(String::as_str)
    }

    /// Name of the default input port.
    pub fn default_input(&self) -> Option<&str> {
        self.inputs.first().map(|p| p.name.as_str())
    }

    /// Whether the PE keeps state across process calls (`init` present or
    /// `state` referenced in the body).
    pub fn is_stateful(&self) -> bool {
        self.init.is_some() || crate::analysis::mentions_state(&self.process)
    }
}

/// A node binding inside a workflow declaration: `alias = PeName;`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBinding {
    /// Local alias used in `connect` lines.
    pub alias: String,
    /// PE class name.
    pub pe_name: String,
}

/// A connection: `connect a.output -> b.input;`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectDecl {
    /// Source node alias.
    pub from_node: String,
    /// Source port.
    pub from_port: String,
    /// Destination node alias.
    pub to_node: String,
    /// Destination port.
    pub to_port: String,
}

/// A workflow declaration (the abstract workflow of paper Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowDecl {
    /// Workflow name.
    pub name: String,
    /// Optional `doc` string.
    pub doc: Option<String>,
    /// Node bindings.
    pub nodes: Vec<NodeBinding>,
    /// Connections.
    pub connects: Vec<ConnectDecl>,
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let { name: String, value: Expr },
    /// `target = expr;` where target is an lvalue chain.
    Assign { target: Expr, value: Expr },
    /// `if cond { .. } else { .. }` (else optional; else-if chains nest).
    If { cond: Expr, then_block: Block, else_block: Option<Block> },
    /// `while cond { .. }`
    While { cond: Expr, body: Block },
    /// `for var in expr { .. }` — iterates arrays and integer ranges.
    For { var: String, iter: Expr, body: Block },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `emit(value);` — write to the default output port.
    Emit(Expr),
    /// `emit(port_name, value);` as `emit_to`.
    EmitTo { port: String, value: Expr },
    /// Bare expression statement (usually a call).
    ExprStmt(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Source form.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions. Every node carries the source line for runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var { name: String, line: usize },
    /// `[a, b, c]`
    List(Vec<Expr>),
    /// `{ "k": v, ... }`
    MapLit(Vec<(String, Expr)>),
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr>, line: usize },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr>, line: usize },
    /// Function call: plain `f(args)` or dotted `module.f(args)`.
    Call { module: Option<String>, name: String, args: Vec<Expr>, line: usize },
    /// Indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr>, line: usize },
    /// Field access `base.field`.
    Field { base: Box<Expr>, field: String, line: usize },
}

impl Expr {
    /// Source line of the expression (0 for position-less literals).
    pub fn line(&self) -> usize {
        match self {
            Expr::Var { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Call { line, .. }
            | Expr::Index { line, .. }
            | Expr::Field { line, .. } => *line,
            _ => 0,
        }
    }

    /// Is this expression usable as an assignment target?
    pub fn is_lvalue(&self) -> bool {
        match self {
            Expr::Var { .. } => true,
            Expr::Index { base, .. } | Expr::Field { base, .. } => base.is_lvalue(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_kind_round_trip() {
        for k in [PeKind::Producer, PeKind::Iterative, PeKind::Consumer, PeKind::Generic] {
            assert_eq!(PeKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(PeKind::parse("mapper"), None);
    }

    #[test]
    fn lvalue_classification() {
        let v = Expr::Var { name: "x".into(), line: 1 };
        assert!(v.is_lvalue());
        let idx = Expr::Index { base: Box::new(v.clone()), index: Box::new(Expr::Int(0)), line: 1 };
        assert!(idx.is_lvalue());
        let call = Expr::Call { module: None, name: "f".into(), args: vec![], line: 1 };
        assert!(!call.is_lvalue());
        let idx_of_call = Expr::Index { base: Box::new(call), index: Box::new(Expr::Int(0)), line: 1 };
        assert!(!idx_of_call.is_lvalue());
    }

    #[test]
    fn binop_strings() {
        assert_eq!(BinOp::Add.as_str(), "+");
        assert_eq!(BinOp::And.as_str(), "and");
        assert_eq!(BinOp::Le.as_str(), "<=");
    }
}
