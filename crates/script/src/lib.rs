//! # laminar-script
//!
//! **LamScript** — the small interpreted language Laminar uses for
//! Processing-Element code.
//!
//! In the paper, PEs are Python classes serialized with cloudpickle and
//! executed remotely. A Rust reproduction needs an equivalent *code-as-data*
//! mechanism: source that can be registered, embedded, summarized, shipped
//! over the wire and executed by a remote engine. LamScript provides exactly
//! that lifecycle.
//!
//! ## A complete PE
//!
//! ```text
//! pe IsPrime : iterative {
//!     doc "Checks if the given input is prime and forwards primes";
//!     input num;
//!     output output;
//!     process {
//!         let i = 2;
//!         let prime = num > 1;
//!         while i * i <= num {
//!             if num % i == 0 { prime = false; break; }
//!             i = i + 1;
//!         }
//!         if prime { emit(num); }
//!     }
//! }
//! ```
//!
//! ## Pipeline
//!
//! [`lex`](lexer::lex) → [`parse`](parser::parse_script) →
//! [`Interp`](interp::Interp) (tree-walking, fuel-bounded) or
//! [`compile`](compile::compile_script) → [`Vm`](vm::Vm) (register
//! bytecode, cached per canonical source, differential-tested against the
//! interpreter) plus [`analysis`] (imports à la `findimports`, identifier
//! and def-use extraction for the embedding models) and [`pretty`]
//! (canonical source form stored in the registry and used as the compile
//! cache key).

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod vm;

pub use ast::{Block, Expr, Item, PeDecl, PeKind, PortDecl, Script, Stmt, WorkflowDecl};
pub use compile::{compile_script, Program};
pub use error::{ErrorKind, ScriptError};
pub use interp::{Host, Interp, NullHost, Sink, VecSink};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse_expr, parse_script};
pub use pretty::to_source;
pub use vm::Vm;

/// Parse and pretty-print: the canonical form of a script, used when the
/// registry stores PE code so that equivalent sources embed identically.
pub fn canonicalize(source: &str) -> Result<String, ScriptError> {
    Ok(to_source(&parse_script(source)?))
}
