//! Minimal offline substitute for the `rand` API subset Laminar uses.
//!
//! The build container has no crates.io access, so dependent crates import
//! this crate under the name `rand` via a cargo dependency rename (root
//! `Cargo.toml`). Only the surface Laminar calls is provided:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], the [`RngExt`] methods
//! (`random`, `random_range`, `random_bool`) and [`seq::IndexedRandom::choose`].
//!
//! `StdRng` is a [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! generator: tiny, fast, and — the only property the workspace actually
//! relies on — fully deterministic for a given seed.

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        /// Current internal state. Together with [`StdRng::set_state`]
        /// this makes the generator checkpointable: splitmix64's entire
        /// state is one word, so saving and restoring it resumes the
        /// stream exactly where it left off.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Overwrite the internal state (see [`StdRng::state`]).
        pub fn set_state(&mut self, state: u64) {
            self.state = state;
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`RngExt::random_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range. Panics on empty ranges,
    /// like rand.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The convenience methods rand 0.9 puts on `Rng`.
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Slice helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Uniform choice from an indexable collection.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// Uniformly pick a reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        let _: u64 = rng.random();
        let saved = rng.state();
        let ahead: Vec<u64> = (0..4).map(|_| rng.random::<u64>()).collect();
        let mut resumed = StdRng::seed_from_u64(0);
        resumed.set_state(saved);
        let replay: Vec<u64> = (0..4).map(|_| resumed.random::<u64>()).collect();
        assert_eq!(ahead, replay);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u = rng.random_range(3..=3usize);
            assert_eq!(u, 3);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = ["a", "b", "c"];
        let empty: [&str; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
