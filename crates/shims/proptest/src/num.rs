//! Numeric strategies (`prop::num::f64::NORMAL`).

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over all *normal* floats (finite, non-zero, non-subnormal)
    /// across the full exponent range — the values JSON must round-trip.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// The normal-floats strategy.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = ::core::primitive::f64;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            loop {
                let f = ::core::primitive::f64::from_bits(rng.next_u64());
                if f.is_normal() {
                    return f;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn only_normal_values() {
            let mut rng = TestRng::deterministic("norm");
            for _ in 0..500 {
                assert!(NORMAL.sample(&mut rng).is_normal());
            }
        }
    }
}
