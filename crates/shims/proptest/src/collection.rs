//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::{BoxedStrategy, Strategy};
use std::collections::BTreeMap;
use std::ops::Range;
use std::rc::Rc;

/// A vector of `elem` samples with length drawn from `size`.
pub fn vec<S>(elem: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy(Rc::new(move |rng| {
        let len = size.start + rng.below((size.end - size.start).max(1));
        (0..len).map(|_| elem.sample(rng)).collect()
    }))
}

/// A map of `key`/`value` samples with size drawn from `size` (duplicate
/// keys collapse, like proptest's).
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
where
    K: Strategy + 'static,
    V: Strategy + 'static,
    K::Value: Ord + 'static,
    V::Value: 'static,
{
    BoxedStrategy(Rc::new(move |rng| {
        let len = size.start + rng.below((size.end - size.start).max(1));
        (0..len).map(|_| (key.sample(rng), value.sample(rng))).collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0..100i64, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_keys_are_generated() {
        let mut rng = TestRng::deterministic("map");
        let s = btree_map("[a-z]{1,3}", 0..10i64, 0..6);
        let m = s.sample(&mut rng);
        for k in m.keys() {
            assert!(!k.is_empty() && k.len() <= 3);
        }
    }
}
