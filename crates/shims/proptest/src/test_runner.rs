//! Deterministic RNG and per-test configuration.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property runs, configurable per file via
/// `#![proptest_config(ProptestConfig::with_cases(n))]` or globally via the
/// `PROPTEST_CASES` environment variable (which wins over the default but
/// not over an explicit `with_cases`; CI's `--quick` tier uses it to run a
/// reduced sweep).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The workspace's standard generator (`laminar-rand`'s `StdRng`) seeded
/// from the test name: every run of a given test sees the same case
/// sequence, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a hash).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform index below `n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Letting `TestRng` act as a `laminar-rand` generator gives the strategy
/// layer the rand shim's range sampling for free.
impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_label_sensitive() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
