//! String generation from the regex subset the workspace's suites use:
//! sequences of `[class]`, `\PC` or literal-char units, each optionally
//! followed by `{m,n}` / `{n}` repetition.
//!
//! `\PC` means "not in Unicode category C" (printable); it is approximated
//! by a pool of printable ASCII plus a handful of multi-byte characters so
//! parsers see non-ASCII UTF-8 early.

use crate::test_runner::TestRng;

const PRINTABLE_EXTRAS: &[char] = &['é', 'ß', 'Ω', 'Ж', '中', '한', '∞', 'œ', '🦀', '☂'];

#[derive(Debug, Clone)]
enum Unit {
    /// Inclusive char ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
    /// Any printable char (`\PC`).
    Printable,
}

fn parse_units(pattern: &str) -> Vec<(Unit, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let unit = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1; // consume ']'
                Unit::Class(ranges)
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?} (only \\PC is implemented)"
                );
                i += 3;
                Unit::Printable
            }
            c => {
                i += 1;
                Unit::Class(vec![(c, c)])
            }
        };
        // Optional {m,n} or {n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {...}") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n: usize = body.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        units.push((unit, min, max));
    }
    units
}

fn sample_char(unit: &Unit, rng: &mut TestRng) -> char {
    match unit {
        Unit::Class(ranges) => {
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = (rng.next_u64() % total as u64) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick).expect("valid scalar in class range");
                }
                pick -= span;
            }
            unreachable!("pick is bounded by the total span")
        }
        Unit::Printable => {
            // Mostly ASCII printable, occasionally a multi-byte char.
            if rng.next_u64().is_multiple_of(8) {
                PRINTABLE_EXTRAS[rng.below(PRINTABLE_EXTRAS.len())]
            } else {
                char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).expect("printable ASCII")
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (unit, min, max) in parse_units(pattern) {
        let len = min + rng.below(max - min + 1);
        for _ in 0..len {
            out.push(sample_char(&unit, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_bounds() {
        let mut rng = TestRng::deterministic("cls");
        for _ in 0..200 {
            let s = generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut rng = TestRng::deterministic("ascii");
        for _ in 0..200 {
            let s = generate("[ -~]{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn printable_escape() {
        let mut rng = TestRng::deterministic("pc");
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = generate("\\PC{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "printable pool should include non-ASCII");
    }

    #[test]
    fn fixed_count_and_literals() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!(generate("ab{3}", &mut rng), "abbb");
    }
}
