//! `any::<T>()` — type-driven strategies with light edge-case biasing.

use crate::strategy::BoxedStrategy;
use crate::test_runner::TestRng;
use std::rc::Rc;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one value; implementations mix in boundary values so parsers
    /// and codecs see extremes early.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary + 'static>() -> BoxedStrategy<A> {
    BoxedStrategy(Rc::new(|rng| A::arbitrary(rng)))
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 draws come from the boundary pool.
                if rng.next_u64().is_multiple_of(8) {
                    const EDGES: [i128; 5] = [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128];
                    EDGES[rng.below(EDGES.len())] as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn edges_appear() {
        let mut rng = TestRng::deterministic("edges");
        let s = any::<i64>();
        let vals: Vec<i64> = (0..400).map(|_| s.sample(&mut rng)).collect();
        assert!(vals.contains(&i64::MAX));
        assert!(vals.contains(&0));
    }
}
