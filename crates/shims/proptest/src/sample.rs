//! `prop::sample::select` — uniform choice from a fixed pool.

use crate::strategy::BoxedStrategy;
use std::rc::Rc;

/// Uniformly select one element of `items` per case.
pub fn select<T: Clone + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
    assert!(!items.is_empty(), "select needs a non-empty pool");
    BoxedStrategy(Rc::new(move |rng| items[rng.below(items.len())].clone()))
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn select_covers_pool() {
        let mut rng = TestRng::deterministic("sel");
        let s = super::select(vec!["+", "-", "*"]);
        let seen: std::collections::BTreeSet<&str> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }
}
