//! The [`Strategy`] trait and core combinators.
//!
//! Every combinator returns a [`BoxedStrategy`]: an `Rc`-shared sampling
//! closure. That keeps the type algebra trivial (no shrink trees) at the
//! cost of one indirection per sample — irrelevant at test scale.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cloneable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.sample(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| f(s.sample(rng))))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// nested level and returns the composite level. `depth` bounds the
    /// nesting; the remaining two parameters (proptest's target sizes) are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let shallow = leaf.clone();
            // 1-in-3 chance of bottoming out early at each level keeps the
            // expected tree size modest while still reaching full depth.
            strat = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64().is_multiple_of(3) {
                    shallow.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        strat
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (backs [`crate::prop_oneof!`]).
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.below(arms.len());
        arms[i].sample(rng)
    }))
}

/// Integer ranges are strategies; the uniform sampling itself lives in the
/// rand shim (`laminar-rand`), which [`TestRng`] implements `RngCore` for.
impl<T: 'static> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample(self.clone(), rng)
    }
}

impl<T: 'static> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample(self.clone(), rng)
    }
}

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("t");
        let s = (0..10i64).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn one_of_hits_every_arm() {
        let mut rng = TestRng::deterministic("arms");
        let s = one_of(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let seen: std::collections::BTreeSet<i32> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::deterministic("tree");
        let s = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(4, 64, 8, |inner| crate::collection::vec(inner, 0..4).prop_map(Tree::Node));
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut rng)) <= 4);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("tup");
        let s = (0..5i64, crate::bool::ANY, "[a-c]{1,2}");
        let (n, _b, txt) = s.sample(&mut rng);
        assert!((0..5).contains(&n));
        assert!(!txt.is_empty() && txt.len() <= 2);
    }
}
