//! Minimal offline substitute for the `proptest` API subset Laminar's
//! property suites use.
//!
//! The build container has no crates.io access, so the workspace's
//! `tests/proptest_*.rs` suites import this crate under the name `proptest`
//! via a cargo dependency rename (root `Cargo.toml`). It implements random
//! generation only — no shrinking, no persistence of failing cases — which
//! keeps it a few hundred lines while exercising the same properties. Each
//! test runs [`ProptestConfig::cases`] deterministic cases seeded from the
//! test's name, so failures reproduce exactly on re-run.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`/`prop_recursive`/
//! `boxed`, [`arbitrary::any`], [`strategy::Just`], integer-range and
//! regex-literal strategies, tuple strategies, `collection::{vec,
//! btree_map}`, `sample::select`, `num::f64::NORMAL` and `bool::ANY`.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; panics (and thus fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}
