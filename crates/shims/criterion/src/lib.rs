//! Minimal offline substitute for the `criterion` API subset Laminar's
//! benches use.
//!
//! The build container has no crates.io access, so `benches/` targets
//! import this crate under the name `criterion` via a cargo dependency
//! rename (root `Cargo.toml`). It is a measurement harness, not a
//! statistics engine: each benchmark runs `sample_size` timed iterations
//! after one warm-up and reports min/mean/max on stdout. Pass `--quick`
//! (or run under `cargo test`, which passes `--test`) to clamp every
//! benchmark to a single iteration.

use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion { default_sample_size: 10, quick }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            quick: self.quick,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let quick = self.quick;
        let n = self.default_sample_size;
        run_one("", &id.into(), n, quick, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for criterion compatibility; this harness always runs
    /// exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, self.quick, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, self.quick, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, quick: bool, mut f: F) {
    let samples = if quick { 1 } else { samples };
    let mut b = Bencher { samples, durations: Vec::with_capacity(samples) };
    f(&mut b);
    let label = if group.is_empty() { id.0.clone() } else { format!("{group}/{}", id.0) };
    if b.durations.is_empty() {
        println!("{label:<56} (no measurements)");
        return;
    }
    let min = b.durations.iter().min().expect("non-empty");
    let max = b.durations.iter().max().expect("non-empty");
    let mean = b.durations.iter().sum::<Duration>() / b.durations.len() as u32;
    println!(
        "{label:<56} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
        mean,
        min,
        max,
        b.durations.len()
    );
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations (plus one
    /// untimed warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`], with per-iteration untimed setup.
    pub fn iter_with_setup<S, O, FS: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: FS,
        mut routine: F,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(t0.elapsed());
        }
    }
}

/// A benchmark label, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label combining a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion { default_sample_size: 3, quick: false };
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion { default_sample_size: 2, quick: false };
        let mut setups = 0usize;
        c.bench_function("s", |b| b.iter_with_setup(|| setups += 1, |_| ()));
        assert_eq!(setups, 3);
    }
}
