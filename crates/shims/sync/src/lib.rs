//! Minimal offline substitute for the `parking_lot` API subset Laminar
//! uses (`Mutex`, `RwLock`, `Condvar` with deadline waits).
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `parking_lot` cannot be fetched. Dependent crates import this crate
//! under the name `parking_lot` via a cargo dependency rename (see the root
//! `Cargo.toml`); swapping the real crate back in is a one-line manifest
//! change, no source edits.
//!
//! Semantics match parking_lot where Laminar relies on them:
//! * `lock()`/`read()`/`write()` return guards directly (no `Result`) —
//!   poisoning is absorbed by continuing with the inner data, which is what
//!   parking_lot (no poisoning at all) gives its callers.
//! * `Condvar::wait_until` takes the guard by `&mut` and reports timeout
//!   through [`WaitTimeoutResult::timed_out`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Mutual exclusion backed by [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar::wait_until`]
/// temporarily hand the inner std guard to the condition variable.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader-writer lock backed by [`std::sync::RwLock`].
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `deadline` passes. Returns whether the wait
    /// timed out (spurious wakeups are reported as not-timed-out, matching
    /// parking_lot — callers re-check their predicate in a loop).
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self.0.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Block until notified or `timeout` elapses (the relative-time twin
    /// of [`Condvar::wait_until`], matching parking_lot's API).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }
}

/// Outcome of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = c.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "worker never signalled");
        }
        t.join().unwrap();
    }
}
