//! Unsigned LEB128 varints: compact length prefixes inside lampickle frames.

/// Append `value` to `out` as a LEB128 varint. Returns bytes written (1–10).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint from the front of `input`. Returns `(value, bytes_read)`.
///
/// Fails on truncated input and on encodings longer than 10 bytes (which
/// cannot occur for a `u64` and indicate corruption).
pub fn read_u64(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return None;
        }
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only contribute one bit.
        if i == 9 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(buf.len(), n);
            let (back, read) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(read, n);
        }
    }

    #[test]
    fn single_byte_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf, vec![0x7F]);
    }

    #[test]
    fn truncated_fails() {
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[]), None);
    }

    #[test]
    fn overlong_fails() {
        // 11 continuation bytes can never be a valid u64.
        let bad = vec![0xFF; 11];
        assert_eq!(read_u64(&bad), None);
        // 10th byte carrying more than 1 bit overflows u64.
        let mut bad2 = vec![0xFF; 9];
        bad2.push(0x7F);
        assert_eq!(read_u64(&bad2), None);
    }

    #[test]
    fn reads_only_prefix() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(b"tail");
        let (v, n) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(&buf[n..], b"tail");
    }
}
