//! "lampickle": the binary value codec Laminar ships code and data with.
//!
//! Role-equivalent to cloudpickle in the paper: the client serializes PE
//! specs, workflow graphs and runtime arguments into a self-describing byte
//! frame; the registry stores the frame (base64-encoded); the execution
//! engine deserializes and runs it.
//!
//! ## Frame layout
//!
//! ```text
//! +-------+---------+------------------+-------------------+----------+
//! | magic | version | payload len (LE) | payload (TLV tree)| CRC32 LE |
//! | "LPK" |  u8 =1  |  u32             |                   | of payload|
//! +-------+---------+------------------+-------------------+----------+
//! ```
//!
//! Payload encoding is tag + varint lengths, one byte tag per node.

use crate::crc32;
use crate::varint;
use laminar_json::{Map, Value};

/// Frame magic bytes.
pub const MAGIC: &[u8; 3] = b"LPK";
/// Current frame version.
pub const VERSION: u8 = 1;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARRAY: u8 = 0x06;
const TAG_OBJECT: u8 = 0x07;

/// Errors produced by [`loads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Unknown frame version.
    BadVersion(u8),
    /// Payload length field disagrees with the actual frame size.
    LengthMismatch { declared: usize, actual: usize },
    /// CRC check failed: the payload was corrupted in transit/storage.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// Unknown node tag inside the payload.
    BadTag(u8),
    /// A varint or node body ran past the end of the payload.
    UnexpectedEof,
    /// String node contained invalid UTF-8.
    InvalidUtf8,
    /// Nesting exceeded the decode depth bound.
    TooDeep,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, actual {actual}")
            }
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:08x}, got {actual:08x}")
            }
            CodecError::BadTag(t) => write!(f, "unknown node tag 0x{t:02x}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of payload"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string node"),
            CodecError::TooDeep => write!(f, "payload nesting too deep"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAX_DECODE_DEPTH: usize = 512;

/// Serialize a value tree into a framed, checksummed byte vector.
pub fn dumps(v: &Value) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    encode_node(&mut payload, v);
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(MAGIC);
    frame.push(VERSION);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32::checksum(&payload).to_le_bytes());
    frame
}

/// Deserialize a frame produced by [`dumps`], verifying magic, version,
/// length and CRC.
pub fn loads(frame: &[u8]) -> Result<Value, CodecError> {
    if frame.len() < 12 {
        return Err(CodecError::Truncated);
    }
    if &frame[..3] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if frame[3] != VERSION {
        return Err(CodecError::BadVersion(frame[3]));
    }
    let declared = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
    let actual = frame.len() - 12;
    if declared != actual {
        return Err(CodecError::LengthMismatch { declared, actual });
    }
    let payload = &frame[8..8 + declared];
    let crc_bytes = &frame[8 + declared..];
    let expected = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let got = crc32::checksum(payload);
    if expected != got {
        return Err(CodecError::ChecksumMismatch { expected, actual: got });
    }
    let mut pos = 0;
    let v = decode_node(payload, &mut pos, 0)?;
    if pos != payload.len() {
        return Err(CodecError::LengthMismatch { declared: pos, actual: payload.len() });
    }
    Ok(v)
}

fn encode_node(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            // ZigZag so negative ints stay small.
            let z = ((*i << 1) ^ (*i >> 63)) as u64;
            varint::write_u64(out, z);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(a) => {
            out.push(TAG_ARRAY);
            varint::write_u64(out, a.len() as u64);
            for e in a {
                encode_node(out, e);
            }
        }
        Value::Object(m) => {
            out.push(TAG_OBJECT);
            varint::write_u64(out, m.len() as u64);
            for (k, e) in m {
                varint::write_u64(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_node(out, e);
            }
        }
    }
}

fn read_varint(payload: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let (v, n) = varint::read_u64(&payload[*pos..]).ok_or(CodecError::UnexpectedEof)?;
    *pos += n;
    Ok(v)
}

fn read_bytes<'a>(payload: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], CodecError> {
    if *pos + len > payload.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let s = &payload[*pos..*pos + len];
    *pos += len;
    Ok(s)
}

fn decode_node(payload: &[u8], pos: &mut usize, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let tag = *payload.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let z = read_varint(payload, pos)?;
            let i = ((z >> 1) as i64) ^ -((z & 1) as i64);
            Ok(Value::Int(i))
        }
        TAG_FLOAT => {
            let b = read_bytes(payload, pos, 8)?;
            let bits = u64::from_le_bytes(b.try_into().expect("8-byte slice"));
            Ok(Value::Float(f64::from_bits(bits)))
        }
        TAG_STR => {
            let len = read_varint(payload, pos)? as usize;
            let b = read_bytes(payload, pos, len)?;
            Ok(Value::Str(String::from_utf8(b.to_vec()).map_err(|_| CodecError::InvalidUtf8)?))
        }
        TAG_ARRAY => {
            let len = read_varint(payload, pos)? as usize;
            // Guard against length bombs: each element needs ≥1 byte.
            if len > payload.len() - *pos {
                return Err(CodecError::UnexpectedEof);
            }
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(decode_node(payload, pos, depth + 1)?);
            }
            Ok(Value::Array(out))
        }
        TAG_OBJECT => {
            let len = read_varint(payload, pos)? as usize;
            if len > payload.len() - *pos {
                return Err(CodecError::UnexpectedEof);
            }
            let mut m = Map::new();
            for _ in 0..len {
                let klen = read_varint(payload, pos)? as usize;
                let kb = read_bytes(payload, pos, klen)?;
                let key = String::from_utf8(kb.to_vec()).map_err(|_| CodecError::InvalidUtf8)?;
                let val = decode_node(payload, pos, depth + 1)?;
                m.insert(key, val);
            }
            Ok(Value::Object(m))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Convenience: serialize and base64-encode in one step — the exact form the
/// registry's `peCode`/`workflowCode` columns store.
pub fn dumps_b64(v: &Value) -> String {
    crate::base64::encode(&dumps(v))
}

/// Inverse of [`dumps_b64`].
pub fn loads_b64(text: &str) -> Result<Value, CodecError> {
    let bytes = crate::base64::decode(text).map_err(|_| CodecError::Truncated)?;
    loads(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::{jarr, jobj};

    fn sample() -> Value {
        jobj! {
            "name" => "IsPrime",
            "ports" => jarr!["input", "output"],
            "stateful" => false,
            "iters" => -42,
            "rate" => 0.125,
            "nested" => jobj! { "deep" => jarr![Value::Null, true] },
        }
    }

    #[test]
    fn round_trip() {
        let v = sample();
        assert_eq!(loads(&dumps(&v)).unwrap(), v);
    }

    #[test]
    fn b64_round_trip() {
        let v = sample();
        let text = dumps_b64(&v);
        assert!(text.bytes().all(|b| b.is_ascii_alphanumeric() || b"+/=".contains(&b)));
        assert_eq!(loads_b64(&text).unwrap(), v);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut frame = dumps(&sample());
        let mid = frame.len() / 2;
        frame[mid] ^= 0xFF;
        match loads(&frame) {
            Err(CodecError::ChecksumMismatch { .. }) | Err(CodecError::UnexpectedEof) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut frame = dumps(&Value::Null);
        frame[0] = b'X';
        assert_eq!(loads(&frame), Err(CodecError::BadMagic));
        let mut frame = dumps(&Value::Null);
        frame[3] = 9;
        assert_eq!(loads(&frame), Err(CodecError::BadVersion(9)));
    }

    #[test]
    fn truncated_frame() {
        let frame = dumps(&sample());
        assert!(loads(&frame[..5]).is_err());
        assert!(loads(&frame[..frame.len() - 1]).is_err());
        assert_eq!(loads(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn negative_ints_zigzag() {
        for i in [-1i64, -1000, i64::MIN, i64::MAX, 0, 1] {
            let v = Value::Int(i);
            assert_eq!(loads(&dumps(&v)).unwrap(), v, "int {i}");
        }
    }

    #[test]
    fn special_floats_survive() {
        for f in [0.0, -0.0, f64::MAX, f64::MIN_POSITIVE] {
            let v = Value::Float(f);
            let back = loads(&dumps(&v)).unwrap();
            match back {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn length_bomb_rejected() {
        // Handcraft a payload claiming a 2^40-element array.
        let mut payload = vec![TAG_ARRAY];
        varint::write_u64(&mut payload, 1 << 40);
        let mut frame = Vec::new();
        frame.extend_from_slice(MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32::checksum(&payload).to_le_bytes());
        assert_eq!(loads(&frame), Err(CodecError::UnexpectedEof));
    }
}
