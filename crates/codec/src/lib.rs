//! # laminar-codec
//!
//! Serialization substrate for Laminar.
//!
//! The paper's client pickles PE/workflow code with `cloudpickle`, wraps the
//! byte string in base64 for registry storage, and ships it over the wire.
//! This crate provides the equivalent building blocks, written from scratch:
//!
//! * [`base64`] — RFC 4648 standard-alphabet encode/decode.
//! * [`crc32`] — CRC-32 (IEEE) integrity checksums on payload frames.
//! * [`varint`] — LEB128 unsigned varints for compact length prefixes.
//! * [`pickle`] — "lampickle", a tag-length-value binary codec for
//!   [`laminar_json::Value`] trees with a framed, checksummed envelope.
//!
//! ```
//! use laminar_json::jobj;
//! use laminar_codec::pickle;
//!
//! let v = jobj! { "pe" => "NumberProducer", "iters" => 5 };
//! let frame = pickle::dumps(&v);
//! assert_eq!(pickle::loads(&frame).unwrap(), v);
//!
//! // Registry storage form: base64 text, like the paper's `peCode` column.
//! let text = laminar_codec::base64::encode(&frame);
//! assert_eq!(laminar_codec::base64::decode(&text).unwrap(), frame);
//! ```

pub mod base64;
pub mod crc32;
pub mod pickle;
pub mod varint;

pub use pickle::{dumps, loads, CodecError};
