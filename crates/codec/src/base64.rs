//! RFC 4648 base64 (standard alphabet, `=` padding).
//!
//! The registry stores serialized PE and workflow code as base64 text — the
//! same portability trick the paper applies to cloudpickle byte strings.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the alphabet (and not padding) was encountered.
    InvalidByte { position: usize, byte: u8 },
    /// Input length is not a multiple of 4.
    InvalidLength(usize),
    /// Padding appeared somewhere other than the final one or two bytes.
    MalformedPadding,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidByte { position, byte } => {
                write!(f, "invalid base64 byte 0x{byte:02x} at position {position}")
            }
            Base64Error::InvalidLength(n) => write!(f, "base64 length {n} is not a multiple of 4"),
            Base64Error::MalformedPadding => write!(f, "malformed base64 padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

/// Encode bytes to base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for c in &mut chunks {
        let n = ((c[0] as u32) << 16) | ((c[1] as u32) << 8) | c[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        out.push(ALPHABET[n as usize & 63] as char);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = (*a as u32) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push_str("==");
        }
        [a, b] => {
            let n = ((*a as u32) << 16) | ((*b as u32) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
            out.push('=');
        }
        _ => unreachable!("chunks_exact(3) remainder is < 3"),
    }
    out
}

fn decode_byte(b: u8) -> Option<u8> {
    match b {
        b'A'..=b'Z' => Some(b - b'A'),
        b'a'..=b'z' => Some(b - b'a' + 26),
        b'0'..=b'9' => Some(b - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode base64 text produced by [`encode`] (strict: no whitespace, no
/// URL-safe alphabet).
pub fn decode(text: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(Base64Error::InvalidLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_idx, c) in bytes.chunks_exact(4).enumerate() {
        let last = chunk_idx == bytes.len() / 4 - 1;
        let pads = c.iter().rev().take_while(|&&b| b == b'=').count();
        if pads > 2 || (!last && pads > 0) {
            return Err(Base64Error::MalformedPadding);
        }
        // Padding must be a suffix: reject `=A` patterns inside the chunk.
        if c[..4 - pads].contains(&b'=') {
            return Err(Base64Error::MalformedPadding);
        }
        let mut n: u32 = 0;
        for (i, &b) in c[..4 - pads].iter().enumerate() {
            let v =
                decode_byte(b).ok_or(Base64Error::InvalidByte { position: chunk_idx * 4 + i, byte: b })?;
            n |= (v as u32) << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pads < 2 {
            out.push((n >> 8) as u8);
        }
        if pads == 0 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // The canonical test vectors from RFC 4648 §10.
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(Base64Error::InvalidLength(3)));
        assert!(matches!(decode("a?=="), Err(Base64Error::InvalidByte { position: 1, byte: b'?' })));
        assert_eq!(decode("===="), Err(Base64Error::MalformedPadding));
        assert_eq!(decode("Zg==Zg=="), Err(Base64Error::MalformedPadding));
        assert_eq!(decode("Z=g="), Err(Base64Error::MalformedPadding));
    }

    #[test]
    fn rejects_whitespace() {
        assert!(decode("Zm9v\n").is_err());
        assert!(decode(" Zm9v").is_err());
    }
}
