//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every lampickle frame carries a CRC so the execution engine can detect
//! corrupted code payloads before attempting to run them.

/// Lazily-built 256-entry lookup table for the reflected polynomial
/// 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of `data`.
pub fn checksum(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"laminar serverless stream framework";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), checksum(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"payload bytes".to_vec();
        let before = checksum(&data);
        data[4] ^= 0x01;
        assert_ne!(checksum(&data), before);
    }
}
