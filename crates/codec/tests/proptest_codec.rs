//! Property tests: lampickle and base64 are inverses; decoders never panic.

use laminar_codec::{base64, pickle};
use laminar_json::{Map, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "\\PC{0,16}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,5}", inner, 0..5)
                .prop_map(|m| Value::Object(m.into_iter().collect::<Map>())),
        ]
    })
}

proptest! {
    /// loads ∘ dumps = id for arbitrary value trees.
    #[test]
    fn pickle_round_trip(v in arb_value()) {
        prop_assert_eq!(pickle::loads(&pickle::dumps(&v)).unwrap(), v);
    }

    /// The b64 storage form also round-trips.
    #[test]
    fn pickle_b64_round_trip(v in arb_value()) {
        prop_assert_eq!(pickle::loads_b64(&pickle::dumps_b64(&v)).unwrap(), v);
    }

    /// decode ∘ encode = id on arbitrary byte strings.
    #[test]
    fn base64_round_trip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    /// Encoded length matches the closed form ceil(n/3)*4.
    #[test]
    fn base64_length(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64::encode(&data).len(), data.len().div_ceil(3) * 4);
    }

    /// The frame decoder never panics on arbitrary bytes.
    #[test]
    fn loads_never_panics(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = pickle::loads(&data);
    }

    /// Flipping any single payload byte is detected (CRC or structural error).
    #[test]
    fn single_flip_detected(v in arb_value(), flip in any::<u8>(), pos_seed in any::<usize>()) {
        let mut frame = pickle::dumps(&v);
        if frame.len() > 12 {
            let payload_span = frame.len() - 12;
            let pos = 8 + pos_seed % payload_span;
            if flip != 0 {
                frame[pos] ^= flip;
                prop_assert!(pickle::loads(&frame).is_err());
            }
        }
    }

    /// Any strict prefix of a frame is an error, never a partial value —
    /// the strict-frame rule the transports rely on, now mirrored at the
    /// HTTP boundary.
    #[test]
    fn truncated_frame_is_error(v in arb_value(), cut_seed in any::<usize>()) {
        let frame = pickle::dumps(&v);
        let cut = cut_seed % frame.len().max(1);
        prop_assert!(pickle::loads(&frame[..cut]).is_err(), "prefix of {cut}/{} decoded", frame.len());
    }

    /// The b64 storage form rejects truncation too (losing whole 4-char
    /// blocks keeps the text valid base64, so the frame CRC must catch it).
    #[test]
    fn truncated_b64_frame_is_error(v in arb_value(), blocks in 1usize..4) {
        let text = pickle::dumps_b64(&v);
        let keep = text.len().saturating_sub(blocks * 4);
        prop_assert!(pickle::loads_b64(&text[..keep]).is_err());
    }

    /// Corrupting one character of the b64 storage form is detected
    /// (either invalid base64 or a CRC/structural failure after decode).
    #[test]
    fn corrupt_b64_char_is_error(v in arb_value(), pos_seed in any::<usize>(), repl in 0usize..64) {
        let alphabet = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let mut text = pickle::dumps_b64(&v).into_bytes();
        let pos = pos_seed % text.len();
        let replacement = alphabet[repl];
        if text[pos] != replacement {
            text[pos] = replacement;
            let text = String::from_utf8(text).unwrap();
            prop_assert!(pickle::loads_b64(&text).is_err(), "corrupt b64 at {pos} decoded");
        }
    }
}

mod regressions {
    use super::*;
    use laminar_json::jobj;

    /// The corrupt-frame shapes PR 2 made the transports reject; the codec
    /// itself must return errors (never defaults) for every one of them.
    #[test]
    fn corrupt_frame_shapes_are_errors() {
        let good = pickle::dumps(&jobj! { "port" => "input", "value" => 42 });
        // Empty and sub-header frames.
        assert!(pickle::loads(&[]).is_err());
        assert!(pickle::loads(&good[..4]).is_err());
        // Header only, payload missing.
        assert!(pickle::loads(&good[..8]).is_err());
        // CRC trailer cut off.
        assert!(pickle::loads(&good[..good.len() - 4]).is_err());
        // Declared length larger than the buffer.
        let mut oversize = good.clone();
        oversize[0] ^= 0x40;
        assert!(pickle::loads(&oversize).is_err());
        // Trailing garbage after a valid frame.
        let mut padded = good.clone();
        padded.extend_from_slice(b"junk");
        assert!(pickle::loads(&padded).is_err());
        // Zeroed CRC.
        let mut bad_crc = good.clone();
        let n = bad_crc.len();
        bad_crc[n - 4..].fill(0);
        assert!(pickle::loads(&bad_crc).is_err());
    }

    #[test]
    fn corrupt_base64_inputs_are_errors() {
        assert!(base64::decode("ab!c").is_err(), "invalid alphabet byte");
        assert!(base64::decode("abcde").is_err(), "length not a multiple of 4");
        assert!(base64::decode("ab=c").is_err(), "padding in the middle");
        assert!(base64::decode("a===").is_err(), "over-padding");
        // And the b64 pickle wrapper surfaces them as codec errors.
        assert!(pickle::loads_b64("!!!!").is_err());
        assert!(pickle::loads_b64("").is_err());
    }
}
