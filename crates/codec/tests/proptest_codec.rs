//! Property tests: lampickle and base64 are inverses; decoders never panic.

use laminar_codec::{base64, pickle};
use laminar_json::{Map, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "\\PC{0,16}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,5}", inner, 0..5)
                .prop_map(|m| Value::Object(m.into_iter().collect::<Map>())),
        ]
    })
}

proptest! {
    /// loads ∘ dumps = id for arbitrary value trees.
    #[test]
    fn pickle_round_trip(v in arb_value()) {
        prop_assert_eq!(pickle::loads(&pickle::dumps(&v)).unwrap(), v);
    }

    /// The b64 storage form also round-trips.
    #[test]
    fn pickle_b64_round_trip(v in arb_value()) {
        prop_assert_eq!(pickle::loads_b64(&pickle::dumps_b64(&v)).unwrap(), v);
    }

    /// decode ∘ encode = id on arbitrary byte strings.
    #[test]
    fn base64_round_trip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    /// Encoded length matches the closed form ceil(n/3)*4.
    #[test]
    fn base64_length(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64::encode(&data).len(), data.len().div_ceil(3) * 4);
    }

    /// The frame decoder never panics on arbitrary bytes.
    #[test]
    fn loads_never_panics(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = pickle::loads(&data);
    }

    /// Flipping any single payload byte is detected (CRC or structural error).
    #[test]
    fn single_flip_detected(v in arb_value(), flip in any::<u8>(), pos_seed in any::<usize>()) {
        let mut frame = pickle::dumps(&v);
        if frame.len() > 12 {
            let payload_span = frame.len() - 12;
            let pos = 8 + pos_seed % payload_span;
            if flip != 0 {
                frame[pos] ^= flip;
                prop_assert!(pickle::loads(&frame).is_err());
            }
        }
    }
}
